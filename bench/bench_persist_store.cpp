//===- bench/bench_persist_store.cpp - L2 store warm-restart bench -----------===//
//
// The restart scenario the persistent artifact store exists for: a
// fixed mix of point- and polytope-repair requests drains through an
// engine whose cache is backed by an on-disk store, the engine is torn
// down (flushing write-behind), and a *fresh* engine on the same
// directory drains the same mix - its Jacobian / LinRegions phases
// come back from disk instead of being recomputed. Baselines: the same
// mix cache-off, cold (empty store), and L1-warm (same engine, second
// drain).
//
// Emits BENCH_persist_store.json: cache-off / cold / L1-warm /
// L2-warm-after-restart jobs-per-sec, the L2-over-cold speedup, store
// bytes and entry counts, L1 and L2 hit rates at 1, 4, and 8 workers,
// plus the max Delta divergence of every drain against the cache-free
// serial wrappers. Self-checking: exits non-zero if any divergence is
// not exactly 0 (the store's determinism contract extends the cache's
// to disk). Run with --smoke (CI) for a reduced job mix.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Parallel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::bench;

namespace {

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 16 -> 48 -> 48 -> 8 ReLU classifier: the Jacobian phase (what L2
/// hits skip after a restart) carries real weight.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 48, 16, 0.7), randomVector(R, 48, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(48));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 48, 48, 0.6), randomVector(R, 48, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(48));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 8, 48, 0.7), randomVector(R, 8, 0.3)));
  return Net;
}

/// 2 -> 16 -> 2 regressor for the polytope (segment) jobs.
Network makeRegressor(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 2, 0.9), randomVector(R, 16, 0.2)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 2, 16, 0.8), randomVector(R, 2, 0.2)));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

PolytopeSpec makeSegmentSpec(const Network &Net, Rng &R, int Segments) {
  PolytopeSpec Spec;
  for (int S = 0; S < Segments; ++S) {
    Vector A = randomVector(R, Net.inputSize());
    Vector B = randomVector(R, Net.inputSize());
    Vector Lo(Net.outputSize()), Hi(Net.outputSize());
    Vector Ya = Net.evaluate(A), Yb = Net.evaluate(B);
    for (int O = 0; O < Net.outputSize(); ++O) {
      double Mid = 0.5 * (Ya[O] + Yb[O]);
      double Span = std::max(1.0, std::fabs(Ya[O] - Yb[O]));
      Lo[O] = Mid - 1.2 * Span;
      Hi[O] = Mid + 1.2 * Span;
    }
    Spec.push_back(SpecPolytope{SegmentPolytope{A, B},
                                boxConstraint(Lo, Hi)});
  }
  return Spec;
}

double maxDeltaDiff(const RepairResult &A, const RepairResult &B) {
  if (A.Delta.size() != B.Delta.size())
    return 1e300;
  double Max = 0.0;
  for (size_t I = 0; I < A.Delta.size(); ++I)
    Max = std::max(Max, std::fabs(A.Delta[I] - B.Delta[I]));
  return Max;
}

/// Drains \p Requests through \p Engine once; returns wall seconds and
/// accumulates divergence from \p Reference plus job-level store hits.
double drainOnce(RepairEngine &Engine,
                 const std::vector<RepairRequest> &Requests,
                 const std::vector<RepairResult> &Reference,
                 double &MaxDiff, int &Successes,
                 std::int64_t *StoreHits = nullptr) {
  std::vector<JobHandle> Handles;
  Handles.reserve(Requests.size());
  WallTimer Timer;
  for (const RepairRequest &Request : Requests)
    Handles.push_back(Engine.submit(Request));
  for (JobHandle &Handle : Handles)
    Handle.wait();
  double Wall = Timer.seconds();
  for (size_t I = 0; I < Handles.size(); ++I) {
    const RepairReport &Report = Handles[I].report();
    MaxDiff = std::max(MaxDiff, maxDeltaDiff(Report.Result, Reference[I]));
    Successes += Report.Status == RepairStatus::Success;
    if (StoreHits)
      *StoreHits += Report.StoreHits;
  }
  return Wall;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    Smoke = Smoke || std::strcmp(argv[I], "--smoke") == 0;
  const int PointJobs = Smoke ? 6 : 12;
  const int PointsPerJob = Smoke ? 40 : 80;
  const int PolyJobs = Smoke ? 2 : 4;
  const int SegmentsPerJob = Smoke ? 2 : 3;

  namespace fs = std::filesystem;
  const fs::path StoreRoot =
      fs::temp_directory_path() /
      ("prdnn-bench-persist-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));

  Rng R(99001);
  auto Classifier = std::make_shared<Network>(makeClassifier(R));
  auto Regressor = std::make_shared<Network>(makeRegressor(R));
  std::printf("=== Persistent artifact store: engine-restart workload "
              "(%d point + %d polytope jobs%s) ===\n",
              PointJobs, PolyJobs, Smoke ? ", smoke" : "");
  std::printf("store root: %s; pool threads: %d; hardware concurrency: "
              "%u\n\n",
              StoreRoot.string().c_str(), globalThreadCount(),
              std::thread::hardware_concurrency());

  const int Layers[] = {0, 2, 4};
  std::vector<RepairRequest> Requests;
  for (int J = 0; J < PointJobs; ++J) {
    Rng SpecR(8000 + J);
    Requests.push_back(RepairRequest::points(
        Classifier, Layers[J % 3],
        makeFlipSpec(*Classifier, SpecR, PointsPerJob)));
  }
  for (int J = 0; J < PolyJobs; ++J) {
    Rng SpecR(8500 + J);
    Requests.push_back(RepairRequest::polytopes(
        Regressor, 2, makeSegmentSpec(*Regressor, SpecR, SegmentsPerJob)));
  }
  int NumJobs = static_cast<int>(Requests.size());

  // Cache-free serial ground truth (one-shot wrappers).
  std::vector<RepairResult> Reference;
  Reference.reserve(Requests.size());
  for (const RepairRequest &Request : Requests) {
    if (Request.isPolytope())
      Reference.push_back(
          repairPolytopes(*Request.Net, Request.LayerIndex,
                          std::get<PolytopeSpec>(Request.Spec)));
    else
      Reference.push_back(repairPoints(
          *Request.Net, Request.LayerIndex,
          std::get<PointSpec>(Request.Spec)));
  }
  int RefSuccesses = 0;
  for (const RepairResult &Result : Reference)
    RefSuccesses += Result.Status == RepairStatus::Success;

  BenchJson Json("persist_store");
  TablePrinter Table({"workers", "mode", "wall(s)", "jobs/s", "vs cold",
                      "L2 hits", "MiB on disk", "max |dDelta|"});
  double WorstDiff = 0.0;
  bool SuccessesOk = true;
  bool SpeedupOk = true;

  for (int Workers : {1, 4, 8}) {
    const std::string StoreDir =
        (StoreRoot / std::to_string(Workers)).string();

    // Cache-off baseline at this concurrency.
    EngineOptions OffOptions;
    OffOptions.NumWorkers = Workers;
    OffOptions.QueueCapacity = NumJobs;
    OffOptions.EnableCache = false;
    RepairEngine OffEngine(OffOptions);
    double OffDiff = 0.0;
    int OffSuccesses = 0;
    double OffWall =
        drainOnce(OffEngine, Requests, Reference, OffDiff, OffSuccesses);

    // Engine A on an empty store: one cold drain (computes and
    // write-behinds), one L1-warm drain, then an orderly teardown
    // (flush, destruct) - the "server shuts down" half of the story.
    EngineOptions StoreOptions;
    StoreOptions.NumWorkers = Workers;
    StoreOptions.QueueCapacity = NumJobs;
    StoreOptions.StoreDirectory = StoreDir;
    double MaxDiff = 0.0;
    int Successes = 0;
    double ColdWall = 0.0, L1Wall = 0.0;
    std::uint64_t StoreWrites = 0;
    {
      RepairEngine Engine(StoreOptions);
      ColdWall = drainOnce(Engine, Requests, Reference, MaxDiff, Successes);
      L1Wall = drainOnce(Engine, Requests, Reference, MaxDiff, Successes);
      Engine.flushStore();
      StoreWrites = Engine.storeStats().Writes;
    }

    // Engine B, freshly constructed on the same directory: the restart.
    std::int64_t L2Hits = 0;
    double L2Wall = 0.0;
    persist::StoreStats RestartStats;
    CacheStats RestartCache;
    {
      RepairEngine Engine(StoreOptions);
      L2Wall = drainOnce(Engine, Requests, Reference, MaxDiff, Successes,
                         &L2Hits);
      RestartStats = Engine.storeStats();
      RestartCache = Engine.cacheStats();
    }

    WorstDiff = std::max(WorstDiff, std::max(MaxDiff, OffDiff));
    SuccessesOk = SuccessesOk && OffSuccesses == RefSuccesses &&
                  Successes == 3 * RefSuccesses;

    double OffJobsPerSec = NumJobs / OffWall;
    double ColdJobsPerSec = NumJobs / ColdWall;
    double L1JobsPerSec = NumJobs / L1Wall;
    double L2JobsPerSec = NumJobs / L2Wall;
    double L2Speedup = L2JobsPerSec / ColdJobsPerSec;
    SpeedupOk = SpeedupOk && L2Speedup > 1.0;

    Json.beginRecord();
    Json.add("workers", Workers);
    Json.add("jobs_per_round", NumJobs);
    Json.add("smoke", Smoke ? 1 : 0);
    Json.add("cache_off_jobs_per_sec", OffJobsPerSec);
    Json.add("cold_jobs_per_sec", ColdJobsPerSec);
    Json.add("l1_warm_jobs_per_sec", L1JobsPerSec);
    Json.add("l2_warm_restart_jobs_per_sec", L2JobsPerSec);
    Json.add("l2_warm_speedup_vs_cold", L2Speedup);
    Json.add("l1_warm_speedup_vs_cold", L1JobsPerSec / ColdJobsPerSec);
    Json.add("store_writes", static_cast<int>(StoreWrites));
    Json.add("store_bytes", static_cast<double>(RestartStats.BytesHeld));
    Json.add("store_entries", static_cast<int>(RestartStats.Entries));
    Json.add("restart_l2_hit_rate", RestartStats.hitRate());
    Json.add("restart_job_store_hits", static_cast<int>(L2Hits));
    Json.add("restart_corrupt_skips",
             static_cast<int>(RestartStats.CorruptSkips));
    Json.add("max_delta_diff_vs_serial", std::max(MaxDiff, OffDiff));
    Json.add("pool_threads", globalThreadCount());
    Json.add("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));

    auto Mib = [](std::uint64_t Bytes) {
      return static_cast<double>(Bytes) / (1024.0 * 1024.0);
    };
    Table.addRow({std::to_string(Workers), "cache-off",
                  formatDouble(OffWall, 3), formatDouble(OffJobsPerSec, 2),
                  formatDouble(OffJobsPerSec / ColdJobsPerSec, 2), "-", "-",
                  OffDiff == 0.0 ? "0" : formatDouble(OffDiff, 12)});
    Table.addRow({std::to_string(Workers), "cold",
                  formatDouble(ColdWall, 3), formatDouble(ColdJobsPerSec, 2),
                  "1.00", "-", "-", "-"});
    Table.addRow({std::to_string(Workers), "L1-warm",
                  formatDouble(L1Wall, 3), formatDouble(L1JobsPerSec, 2),
                  formatDouble(L1JobsPerSec / ColdJobsPerSec, 2), "-", "-",
                  "-"});
    Table.addRow({std::to_string(Workers), "L2-restart",
                  formatDouble(L2Wall, 3), formatDouble(L2JobsPerSec, 2),
                  formatDouble(L2Speedup, 2), std::to_string(L2Hits),
                  formatDouble(Mib(RestartStats.BytesHeld), 2),
                  MaxDiff == 0.0 ? "0" : formatDouble(MaxDiff, 12)});
  }

  Table.print(std::cout);
  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());

  std::error_code Ec;
  fs::remove_all(StoreRoot, Ec);

  // Divergence is a hard failure (determinism contract); a missing
  // speedup is reported but only warns - CI machines can be noisy.
  bool Ok = WorstDiff == 0.0 && SuccessesOk;
  if (!SpeedupOk)
    std::printf("note: L2-warm restart was not faster than cold on this "
                "run/machine\n");
  std::printf("%s\n",
              Ok ? "bench_persist_store: cold/L1/L2-restart/cache-off "
                   "bit-identical to serial"
                 : "bench_persist_store: DETERMINISM CHECK FAILED");
  return Ok ? 0 : 1;
}
