//===- bench/bench_micro_lp.cpp - LP solver microbenchmarks -------------------===//
//
// RQ4 support: simplex scaling with problem size, and the cost of the
// two norm encodings (l1 via split variables adds columns; l-infinity
// adds coupling rows - rows are what simplex iterations pay for).
//
//===----------------------------------------------------------------------===//

#include "lp/NormObjective.h"
#include "lp/Simplex.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace prdnn;
using namespace prdnn::lp;

namespace {

LinearProgram makeRandomLp(int Vars, int Rows, uint64_t Seed) {
  Rng R(Seed);
  LinearProgram P;
  std::vector<double> Witness(static_cast<size_t>(Vars));
  for (int J = 0; J < Vars; ++J) {
    P.addVariable(-10.0, 10.0, R.normal());
    Witness[J] = R.uniform(-5.0, 5.0);
  }
  for (int I = 0; I < Rows; ++I) {
    std::vector<int> Index;
    std::vector<double> Value;
    double Activity = 0.0;
    for (int J = 0; J < Vars; ++J) {
      double C = R.normal();
      Index.push_back(J);
      Value.push_back(C);
      Activity += C * Witness[J];
    }
    P.addRowLe(std::move(Index), std::move(Value),
               Activity + R.uniform(0.1, 2.0));
  }
  return P;
}

void BM_SimplexDense(benchmark::State &State) {
  int Vars = static_cast<int>(State.range(0));
  int Rows = 2 * Vars;
  LinearProgram P = makeRandomLp(Vars, Rows, 42);
  for (auto _ : State) {
    LpSolution S = solveLp(P);
    benchmark::DoNotOptimize(S.Objective);
    if (S.Status != SolveStatus::Optimal)
      State.SkipWithError("solve failed");
  }
  State.SetLabel(std::to_string(Rows) + " rows x " + std::to_string(Vars) +
                 " vars");
}

void BM_DeltaLpNorm(benchmark::State &State) {
  Norm Objective = State.range(0) == 0 ? Norm::L1 : Norm::LInf;
  const int N = 64, Rows = 96;
  Rng R(7);
  DeltaLp D(N, Objective, 100.0);
  std::vector<double> Witness(N);
  for (int J = 0; J < N; ++J)
    Witness[J] = R.uniform(-1.0, 1.0);
  for (int I = 0; I < Rows; ++I) {
    std::vector<double> Coef(N);
    double Activity = 0.0;
    for (int J = 0; J < N; ++J) {
      Coef[J] = R.normal();
      Activity += Coef[J] * Witness[J];
    }
    D.addConstraint(Coef, Activity - 0.5, Activity + 0.5);
  }
  for (auto _ : State) {
    LpSolution S = solveLp(D.problem());
    benchmark::DoNotOptimize(S.Objective);
    if (S.Status != SolveStatus::Optimal)
      State.SkipWithError("solve failed");
  }
  State.SetLabel(Objective == Norm::L1 ? "l1 (split vars)"
                                       : "linf (coupling rows)");
}

} // namespace

BENCHMARK(BM_SimplexDense)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeltaLpNorm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
