//===- tests/engine_test.cpp - RepairEngine request/job API tests ------------===//
//
// Covers the engine contract: run()/the repairPoints wrappers/submit()
// all produce bit-identical results; N concurrent jobs over the shared
// pool match serial runs exactly; cooperative cancellation before the
// job runs, mid-Jacobian, and in the LP phase (deterministically, via
// checkpoint hooks) resolves with RepairStatus::Cancelled and stamped
// timing stats; the kAutoLayer sweep picks the minimal-norm success
// deterministically; queue backpressure and engine destruction with
// queued jobs behave.
//
//===----------------------------------------------------------------------===//

#include "api/RepairEngine.h"

#include "core/PolytopeRepair.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 6 -> 16 -> 16 -> 4 ReLU classifier; parameterized layers 0, 2, 4.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 6, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 16, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 16, 0.9), randomVector(R, 4, 0.3)));
  return Net;
}

/// Point spec that needs actual repair work: every third point must
/// flip to its runner-up class; the rest anchor their current class.
PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

Network makeFigure3Network() {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0}, {1.0}, {1.0}}), Vector{0.0, 0.0, -1.0}));
  Net.addLayer(std::make_unique<ReLULayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0, -1.0, 1.0}}), Vector{0.0}));
  return Net;
}

PolytopeSpec makeFigure3PolySpec(double Lo, double Hi) {
  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{SegmentPolytope{Vector{0.5}, Vector{1.5}},
                              boxConstraint(Vector{Lo}, Vector{Hi})});
  return Spec;
}

void expectBitIdentical(const RepairResult &A, const RepairResult &B) {
  ASSERT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.Delta.size(), B.Delta.size());
  for (size_t I = 0; I < A.Delta.size(); ++I)
    EXPECT_EQ(A.Delta[I], B.Delta[I]) << "Delta[" << I << "]";
  EXPECT_EQ(A.DeltaL1, B.DeltaL1);
  EXPECT_EQ(A.DeltaLInf, B.DeltaLInf);
  EXPECT_EQ(A.Stats.SpecRows, B.Stats.SpecRows);
  EXPECT_EQ(A.Stats.LpRowsUsed, B.Stats.LpRowsUsed);
}

/// Checkpoint-hook state that cancels its job at the Nth checkpoint of
/// \p Phase. The gate makes the hook wait until the JobHandle exists,
/// so hook-driven cancellation is deterministic even if the worker
/// starts the job before submit() returns to the test.
struct CancelAt {
  RepairPhase Phase;
  int N;
  std::atomic<int> Seen{0};
  JobHandle Handle;
  std::promise<void> HandleReady;
  std::shared_future<void> Ready{HandleReady.get_future().share()};
  std::vector<RepairPhase> Trace; // job-thread only; read after report()

  std::function<void(RepairPhase)> hook(std::shared_ptr<CancelAt> Self) {
    return [Self](RepairPhase P) {
      Self->Ready.wait();
      Self->Trace.push_back(P);
      if (P == Self->Phase &&
          Self->Seen.fetch_add(1, std::memory_order_relaxed) + 1 ==
              Self->N)
        Self->Handle.cancel();
    };
  }
};

TEST(RepairEngine, StatusAndPhaseToString) {
  EXPECT_STREQ(toString(RepairStatus::Cancelled), "Cancelled");
  EXPECT_STREQ(toString(RepairStatus::Success), "Success");
  EXPECT_STREQ(toString(RepairStatus::Infeasible), "Infeasible");
  EXPECT_STREQ(toString(RepairStatus::SolverFailure), "SolverFailure");
  EXPECT_STREQ(lp::toString(lp::SolveStatus::Cancelled), "Cancelled");
  EXPECT_STREQ(toString(RepairPhase::Queued), "Queued");
  EXPECT_STREQ(toString(RepairPhase::LinRegions), "LinRegions");
  EXPECT_STREQ(toString(RepairPhase::Jacobian), "Jacobian");
  EXPECT_STREQ(toString(RepairPhase::Lp), "Lp");
  EXPECT_STREQ(toString(RepairPhase::Verify), "Verify");
  EXPECT_STREQ(toString(RepairPhase::Done), "Done");
}

TEST(RepairEngine, SimplexHonorsPreRaisedCancelFlag) {
  // The solver must notice a raised flag before doing any pivots.
  lp::DeltaLp Lp(4, lp::Norm::L1);
  Lp.addConstraint({1.0, 1.0, 0.0, 0.0}, 1.0, lp::kInfinity);
  Lp.addConstraint({0.0, 1.0, 1.0, -1.0}, -lp::kInfinity, -2.0);
  std::atomic<bool> Flag{true};
  lp::SimplexOptions Options;
  Options.CancelFlag = &Flag;
  lp::LpSolution Sol = lp::solveLp(Lp.problem(), Options);
  EXPECT_EQ(Sol.Status, lp::SolveStatus::Cancelled);
  EXPECT_TRUE(Sol.X.empty());
  Flag.store(false);
  EXPECT_EQ(lp::solveLp(Lp.problem(), Options).Status,
            lp::SolveStatus::Optimal);
}

TEST(RepairEngine, RunMatchesWrapperBitForBit) {
  Rng R(91001);
  Network Net = makeClassifier(R);
  PointSpec Spec = makeFlipSpec(Net, R, 30);

  RepairResult Direct = repairPoints(Net, 4, Spec);
  RepairEngine Engine;
  RepairReport Report = Engine.run(
      RepairRequest::points(RepairRequest::borrow(Net), 4, Spec));
  ASSERT_EQ(Report.Status, Direct.Status);
  EXPECT_EQ(Report.RepairedLayer, 4);
  ASSERT_EQ(Report.Sweep.size(), 1u);
  EXPECT_EQ(Report.Sweep[0].LayerIndex, 4);
  expectBitIdentical(Report.Result, Direct);
}

TEST(RepairEngine, RunPolytopeMatchesWrapperBitForBit) {
  Network Net = makeFigure3Network();
  PolytopeSpec Spec = makeFigure3PolySpec(-0.8, -0.4);
  RepairOptions Options;
  Options.RowMargin = 0.0;

  RepairResult Direct = repairPolytopes(Net, 0, Spec, Options);
  RepairEngine Engine;
  RepairReport Report = Engine.run(RepairRequest::polytopes(
      RepairRequest::borrow(Net), 0, Spec, Options));
  ASSERT_EQ(Report.Status, Direct.Status);
  expectBitIdentical(Report.Result, Direct);
  EXPECT_EQ(Report.Result.Stats.KeyPoints, Direct.Stats.KeyPoints);
  EXPECT_EQ(Report.Result.Stats.LinearRegions, Direct.Stats.LinearRegions);
}

TEST(RepairEngine, ConcurrentSubmitsBitIdenticalToSerialRuns) {
  Rng R(91002);
  auto Classifier = std::make_shared<Network>(makeClassifier(R));
  auto Figure3 = std::make_shared<Network>(makeFigure3Network());

  // Eight jobs over two shared networks: three layers x two specs on
  // the classifier, plus two polytope jobs on Figure 3.
  struct Case {
    RepairRequest Request;
    RepairResult Serial;
  };
  std::vector<Case> Cases;
  std::vector<PointSpec> Specs;
  Specs.push_back(makeFlipSpec(*Classifier, R, 24));
  Specs.push_back(makeFlipSpec(*Classifier, R, 36));
  for (int Layer : {0, 2, 4})
    for (const PointSpec &Spec : Specs) {
      Case C;
      C.Request = RepairRequest::points(Classifier, Layer, Spec);
      C.Serial = repairPoints(*Classifier, Layer, Spec);
      Cases.push_back(std::move(C));
    }
  for (double Hi : {-0.4, -0.5}) {
    RepairOptions Options;
    Options.RowMargin = 0.0;
    PolytopeSpec PolySpec = makeFigure3PolySpec(-0.8, Hi);
    Case C;
    C.Request = RepairRequest::polytopes(Figure3, 0, PolySpec, Options);
    C.Serial = repairPolytopes(*Figure3, 0, PolySpec, Options);
    Cases.push_back(std::move(C));
  }

  EngineOptions Options;
  Options.NumWorkers = 4;
  RepairEngine Engine(Options);
  std::vector<JobHandle> Handles;
  for (Case &C : Cases)
    Handles.push_back(Engine.submit(C.Request));
  ASSERT_EQ(Handles.size(), 8u);

  for (size_t I = 0; I < Cases.size(); ++I) {
    const RepairReport &Report = Handles[I].report();
    EXPECT_GT(Report.JobId, 0u);
    expectBitIdentical(Report.Result, Cases[I].Serial);
    EXPECT_EQ(Handles[I].progress().Phase, RepairPhase::Done);
  }
  EXPECT_EQ(Engine.pendingJobs(), 0);
}

TEST(RepairEngine, CancelWhileQueuedResolvesWithoutRunning) {
  Rng R(91003);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 24);

  EngineOptions Options;
  Options.NumWorkers = 1;
  RepairEngine Engine(Options);

  // Blocker job: its hook parks the single worker until released.
  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Engine.submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  JobHandle Victim = Engine.submit(RepairRequest::points(Net, 2, Spec));
  EXPECT_FALSE(Victim.done());
  Victim.cancel();
  Release.set_value();

  const RepairReport &VictimReport = Victim.report();
  EXPECT_EQ(VictimReport.Status, RepairStatus::Cancelled);
  // Cancelled before any phase did real work, but the stats are still
  // stamped (the TotalSeconds exit-path contract).
  EXPECT_GE(VictimReport.Result.Stats.TotalSeconds, 0.0);
  EXPECT_EQ(VictimReport.Result.Stats.SpecRows, 0);
  EXPECT_TRUE(Victim.progress().CancelRequested);
  EXPECT_EQ(Blocker.report().Status, RepairStatus::Success);
}

TEST(RepairEngine, CancelMidJacobianPhase) {
  Rng R(91004);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  // 600 points -> three 256-point Jacobian chunks on a net this small,
  // so the 2nd Jacobian checkpoint is a genuine mid-phase boundary.
  PointSpec Spec = makeFlipSpec(*Net, R, 600);

  RepairEngine Engine;
  auto State = std::make_shared<CancelAt>();
  State->Phase = RepairPhase::Jacobian;
  State->N = 2;
  JobHandle Handle =
      Engine.submit(RepairRequest::points(Net, 4, Spec),
                    State->hook(State));
  State->Handle = Handle;
  State->HandleReady.set_value();

  const RepairReport &Report = Handle.report();
  EXPECT_EQ(Report.Status, RepairStatus::Cancelled);
  EXPECT_EQ(Report.Result.Status, RepairStatus::Cancelled);
  // One chunk of Jacobians ran; the timing contract still holds.
  EXPECT_GT(Report.Result.Stats.TotalSeconds, 0.0);
  EXPECT_GT(Report.Result.Stats.JacobianSeconds, 0.0);
  EXPECT_EQ(Report.Result.Stats.LpRowsUsed, 0);
  ASSERT_EQ(Report.Sweep.size(), 1u);
  EXPECT_EQ(Report.Sweep[0].Status, RepairStatus::Cancelled);
  // The hook saw exactly two Jacobian checkpoints and nothing later.
  EXPECT_EQ(State->Seen.load(), 2);
  for (RepairPhase P : State->Trace)
    EXPECT_EQ(P, RepairPhase::Jacobian);
}

TEST(RepairEngine, CancelInLpPhase) {
  Rng R(91005);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 60);

  RepairEngine Engine;
  auto State = std::make_shared<CancelAt>();
  State->Phase = RepairPhase::Lp;
  State->N = 2; // phase entry, then the first CG round's checkpoint
  JobHandle Handle =
      Engine.submit(RepairRequest::points(Net, 4, Spec),
                    State->hook(State));
  State->Handle = Handle;
  State->HandleReady.set_value();

  const RepairReport &Report = Handle.report();
  EXPECT_EQ(Report.Status, RepairStatus::Cancelled);
  // The whole Jacobian phase completed; rows exist, the LP stopped.
  EXPECT_GT(Report.Result.Stats.JacobianSeconds, 0.0);
  EXPECT_GT(Report.Result.Stats.SpecRows, 0);
  EXPECT_GT(Report.Result.Stats.TotalSeconds, 0.0);
  EXPECT_FALSE(Report.Result.Repaired.has_value());
}

TEST(RepairEngine, HookSeesPhasesInPipelineOrder) {
  Network Net = makeFigure3Network();
  RepairOptions Options;
  Options.RowMargin = 0.0;
  RepairEngine Engine;
  auto State = std::make_shared<CancelAt>();
  State->Phase = RepairPhase::Done; // never fires: trace only
  State->N = 1;
  JobHandle Handle = Engine.submit(
      RepairRequest::polytopes(RepairRequest::borrow(Net), 0,
                               makeFigure3PolySpec(-0.8, -0.4), Options),
      State->hook(State));
  State->Handle = Handle;
  State->HandleReady.set_value();
  ASSERT_EQ(Handle.report().Status, RepairStatus::Success);

  auto Rank = [](RepairPhase P) { return static_cast<int>(P); };
  ASSERT_FALSE(State->Trace.empty());
  EXPECT_EQ(State->Trace.front(), RepairPhase::LinRegions);
  for (size_t I = 1; I < State->Trace.size(); ++I)
    EXPECT_LE(Rank(State->Trace[I - 1]), Rank(State->Trace[I]));
}

TEST(RepairEngine, AutoLayerSweepPicksMinimalNormDeterministically) {
  Rng R(91006);
  Network Net = makeClassifier(R);
  PointSpec Spec = makeFlipSpec(Net, R, 24);

  // Serial per-layer baseline; the sweep must match its minimum.
  std::vector<int> Layers = Net.parameterizedLayerIndices();
  ASSERT_EQ(Layers.size(), 3u);
  std::vector<RepairResult> Serial;
  for (int Layer : Layers)
    Serial.push_back(repairPoints(Net, Layer, Spec));
  int ExpectLayer = -1;
  double ExpectNorm = 1e300;
  for (size_t I = 0; I < Layers.size(); ++I)
    if (Serial[I].Status == RepairStatus::Success &&
        Serial[I].DeltaL1 < ExpectNorm) {
      ExpectNorm = Serial[I].DeltaL1;
      ExpectLayer = Layers[I];
    }
  ASSERT_GE(ExpectLayer, 0) << "fixture: no layer repaired the spec";

  RepairEngine Engine;
  RepairRequest Request;
  Request.Net = RepairRequest::borrow(Net);
  Request.Spec = Spec;
  Request.LayerIndex = kAutoLayer;
  RepairReport Report = Engine.run(Request);

  ASSERT_EQ(Report.Status, RepairStatus::Success);
  EXPECT_EQ(Report.RepairedLayer, ExpectLayer);
  ASSERT_EQ(Report.Sweep.size(), Layers.size());
  for (size_t I = 0; I < Layers.size(); ++I) {
    EXPECT_EQ(Report.Sweep[I].LayerIndex, Layers[I]);
    EXPECT_EQ(Report.Sweep[I].Status, Serial[I].Status);
    EXPECT_EQ(Report.Sweep[I].DeltaL1, Serial[I].DeltaL1);
  }
  size_t WinnerIdx = 0;
  while (Layers[WinnerIdx] != ExpectLayer)
    ++WinnerIdx;
  expectBitIdentical(Report.Result, Serial[WinnerIdx]);

  // Restricted candidate lists are honored (and keep determinism).
  Request.SweepLayers = {4, 2};
  RepairReport Restricted = Engine.run(Request);
  ASSERT_EQ(Restricted.Sweep.size(), 2u);
  EXPECT_EQ(Restricted.Sweep[0].LayerIndex, 4);
  EXPECT_EQ(Restricted.Sweep[1].LayerIndex, 2);
}

TEST(RepairEngine, PolytopeSweepSharesKeyPointsAndMatchesSerial) {
  // A polytope kAutoLayer sweep computes the layer-independent SyReNN
  // transform once and must still match per-layer serial
  // repairPolytopes bit-for-bit, winner included.
  Network Net = makeFigure3Network();
  PolytopeSpec Spec = makeFigure3PolySpec(-0.8, -0.4);
  RepairOptions Options;
  Options.RowMargin = 0.0;

  std::vector<int> Layers = Net.parameterizedLayerIndices();
  ASSERT_EQ(Layers.size(), 2u);
  std::vector<RepairResult> Serial;
  for (int Layer : Layers)
    Serial.push_back(repairPolytopes(Net, Layer, Spec, Options));
  int ExpectLayer = -1;
  double ExpectNorm = 1e300;
  size_t WinnerIdx = 0;
  for (size_t I = 0; I < Layers.size(); ++I)
    if (Serial[I].Status == RepairStatus::Success &&
        Serial[I].DeltaL1 < ExpectNorm) {
      ExpectNorm = Serial[I].DeltaL1;
      ExpectLayer = Layers[I];
      WinnerIdx = I;
    }
  ASSERT_GE(ExpectLayer, 0);

  RepairEngine Engine;
  RepairRequest Request;
  Request.Net = RepairRequest::borrow(Net);
  Request.Spec = Spec;
  Request.LayerIndex = kAutoLayer;
  Request.Options = Options;
  RepairReport Report = Engine.run(Request);

  ASSERT_EQ(Report.Status, RepairStatus::Success);
  EXPECT_EQ(Report.RepairedLayer, ExpectLayer);
  ASSERT_EQ(Report.Sweep.size(), Layers.size());
  for (size_t I = 0; I < Layers.size(); ++I) {
    EXPECT_EQ(Report.Sweep[I].Status, Serial[I].Status);
    EXPECT_EQ(Report.Sweep[I].DeltaL1, Serial[I].DeltaL1);
  }
  expectBitIdentical(Report.Result, Serial[WinnerIdx]);
  EXPECT_EQ(Report.Result.Stats.KeyPoints,
            Serial[WinnerIdx].Stats.KeyPoints);
  EXPECT_EQ(Report.Result.Stats.LinearRegions,
            Serial[WinnerIdx].Stats.LinearRegions);
}

TEST(RepairEngine, HighPriorityOvertakesQueuedNeutralJobs) {
  Rng R(91010);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 12);

  EngineOptions Options;
  Options.NumWorkers = 1; // strictly serial execution order
  RepairEngine Engine(Options);

  // Blocker job parks the single worker so subsequent submissions pile
  // up in the queue before anything else can start.
  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Engine.submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  // Execution order, recorded at each job's first checkpoint (single
  // worker, so the order is deterministic).
  std::mutex OrderMutex;
  std::vector<std::string> Order;
  auto Tracking = [&](std::string Tag) {
    auto First = std::make_shared<std::atomic<bool>>(false);
    return [&, Tag, First](RepairPhase) {
      if (!First->exchange(true)) {
        std::lock_guard<std::mutex> Lock(OrderMutex);
        Order.push_back(Tag);
      }
    };
  };

  RepairRequest Low = RepairRequest::points(Net, 0, Spec);
  Low.JobPriority = RepairRequest::Priority::Low;
  RepairRequest High = RepairRequest::points(Net, 4, Spec);
  High.JobPriority = RepairRequest::Priority::High;

  // Queue order: low, neutral A, neutral B, then high - which must be
  // served high, A, B, low (strict classes, FIFO inside each).
  JobHandle LowJob = Engine.submit(Low, Tracking("low"));
  JobHandle NeutralA =
      Engine.submit(RepairRequest::points(Net, 2, Spec), Tracking("A"));
  JobHandle NeutralB =
      Engine.submit(RepairRequest::points(Net, 2, Spec), Tracking("B"));
  JobHandle HighJob = Engine.submit(High, Tracking("high"));
  Release.set_value();

  for (JobHandle *Handle : {&Blocker, &LowJob, &NeutralA, &NeutralB,
                            &HighJob})
    Handle->wait();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], "high");
  EXPECT_EQ(Order[1], "A");
  EXPECT_EQ(Order[2], "B");
  EXPECT_EQ(Order[3], "low");
  EXPECT_EQ(HighJob.report().Status, RepairStatus::Success);
}

TEST(RepairEngine, QueueAgingPromotesStarvedLowJob) {
  Rng R(91015);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 12);

  EngineOptions Options;
  Options.NumWorkers = 1;      // strictly serial execution order
  Options.AgingSeconds = 0.05; // one class promotion per 50ms waited
  RepairEngine Engine(Options);

  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Engine.submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  std::mutex OrderMutex;
  std::vector<std::string> Order;
  auto Tracking = [&](std::string Tag) {
    auto First = std::make_shared<std::atomic<bool>>(false);
    return [&, Tag, First](RepairPhase) {
      if (!First->exchange(true)) {
        std::lock_guard<std::mutex> Lock(OrderMutex);
        Order.push_back(Tag);
      }
    };
  };

  // A Low job queues first, then waits out at least one aging period
  // while a stream of fresh Neutral submissions piles up behind the
  // blocker. Under strict classes the Low job would run dead last
  // (HighPriorityOvertakesQueuedNeutralJobs pins that); with aging its
  // effective class reaches Neutral (and later High), and the
  // earliest-submission tie-break puts it ahead of every fresher
  // Neutral - the starvation bound this option exists for.
  RepairRequest Low = RepairRequest::points(Net, 0, Spec);
  Low.JobPriority = RepairRequest::Priority::Low;
  JobHandle LowJob = Engine.submit(Low, Tracking("low"));
  JobHandle NeutralA =
      Engine.submit(RepairRequest::points(Net, 2, Spec), Tracking("A"));
  JobHandle NeutralB =
      Engine.submit(RepairRequest::points(Net, 2, Spec), Tracking("B"));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  JobHandle NeutralC =
      Engine.submit(RepairRequest::points(Net, 2, Spec), Tracking("C"));
  Release.set_value();

  for (JobHandle *Handle : {&Blocker, &LowJob, &NeutralA, &NeutralB,
                            &NeutralC})
    Handle->wait();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], "low") << "aged Low job did not overtake";
  EXPECT_EQ(Order[1], "A");
  EXPECT_EQ(Order[2], "B");
  EXPECT_EQ(Order[3], "C");
  EXPECT_EQ(LowJob.report().Status, RepairStatus::Success);
}

TEST(RepairEngine, SweepAttemptsCarryPhaseTimingsOnAllExitPaths) {
  Rng R(91011);
  Network Net = makeClassifier(R);

  // Contradictory box (Lo > Hi): every layer attempt exits early as
  // Infeasible, which must still stamp the per-attempt phase timings.
  PointSpec Impossible;
  Vector X = randomVector(R, Net.inputSize());
  Vector Lo = Vector::constant(Net.outputSize(), 1.0);
  Vector Hi = Vector::constant(Net.outputSize(), -1.0);
  Impossible.push_back({X, boxConstraint(Lo, Hi), std::nullopt});

  RepairEngine Engine;
  RepairRequest Request;
  Request.Net = RepairRequest::borrow(Net);
  Request.Spec = Impossible;
  Request.LayerIndex = kAutoLayer;
  RepairReport Report = Engine.run(Request);

  ASSERT_EQ(Report.Status, RepairStatus::Infeasible);
  ASSERT_EQ(Report.Sweep.size(), 3u);
  for (const SweepAttempt &Attempt : Report.Sweep) {
    EXPECT_EQ(Attempt.Status, RepairStatus::Infeasible);
    // Jacobians were assembled before the LP proved infeasibility, and
    // the early exit stamped both phase timers.
    EXPECT_GT(Attempt.JacobianSeconds, 0.0);
    EXPECT_GT(Attempt.LpSeconds, 0.0);
    EXPECT_GT(Attempt.Seconds, 0.0);
    EXPECT_GE(Attempt.Seconds,
              Attempt.JacobianSeconds + Attempt.LpSeconds);
  }

  // Successful sweeps carry them too, consistent with the winner's
  // RepairStats.
  PointSpec Flips = makeFlipSpec(Net, R, 18);
  Request.Spec = Flips;
  RepairReport Success = Engine.run(Request);
  ASSERT_EQ(Success.Status, RepairStatus::Success);
  for (const SweepAttempt &Attempt : Success.Sweep) {
    EXPECT_GT(Attempt.JacobianSeconds, 0.0);
    EXPECT_GT(Attempt.LpSeconds, 0.0);
    // One Jacobian chunk plus a simplex-basis lookup per LP solve.
    EXPECT_GE(Attempt.CacheHits + Attempt.CacheMisses, 2);
  }
}

TEST(RepairEngine, ShardedSweepBitIdenticalAcrossShardCounts) {
  // EngineOptions::SweepShards fans the sweep's independent layer
  // attempts across LpScheduler shard threads. The contract: any shard
  // count (1 = the serialized loop, explicit N, 0 = auto) produces the
  // same sweep log and a bit-identical winner.
  Rng R(91020);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 16);
  RepairRequest Request;
  Request.Net = Net;
  Request.Spec = Spec;
  Request.LayerIndex = kAutoLayer;

  EngineOptions Serialized;
  Serialized.SweepShards = 1;
  RepairEngine SerialEngine(Serialized);
  RepairReport Baseline = SerialEngine.run(Request);
  ASSERT_EQ(Baseline.Status, RepairStatus::Success);
  ASSERT_GT(Baseline.Sweep.size(), 1u);
  for (const SweepAttempt &Attempt : Baseline.Sweep)
    EXPECT_EQ(Attempt.ShardId, 0);

  for (int Shards : {2, 4, 8, /*auto=*/0}) {
    EngineOptions Options;
    Options.SweepShards = Shards;
    RepairEngine Engine(Options);
    RepairReport Sharded = Engine.run(Request);
    std::string What = "shards=" + std::to_string(Shards);
    ASSERT_EQ(Sharded.Status, Baseline.Status) << What;
    EXPECT_EQ(Sharded.RepairedLayer, Baseline.RepairedLayer) << What;
    ASSERT_EQ(Sharded.Sweep.size(), Baseline.Sweep.size()) << What;
    for (size_t C = 0; C < Baseline.Sweep.size(); ++C) {
      EXPECT_EQ(Sharded.Sweep[C].LayerIndex, Baseline.Sweep[C].LayerIndex)
          << What;
      EXPECT_EQ(Sharded.Sweep[C].Status, Baseline.Sweep[C].Status) << What;
      EXPECT_EQ(Sharded.Sweep[C].DeltaL1, Baseline.Sweep[C].DeltaL1) << What;
      EXPECT_EQ(Sharded.Sweep[C].DeltaLInf, Baseline.Sweep[C].DeltaLInf)
          << What;
      EXPECT_GE(Sharded.Sweep[C].ShardId, 0) << What;
      if (Shards > 0)
        EXPECT_LT(Sharded.Sweep[C].ShardId, Shards) << What;
    }
    expectBitIdentical(Sharded.Result, Baseline.Result);
  }
}

TEST(RepairEngine, BoundedQueueBackpressure) {
  Rng R(91007);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 12);
  RepairResult Serial = repairPoints(*Net, 4, Spec);

  EngineOptions Options;
  Options.NumWorkers = 2;
  Options.QueueCapacity = 2; // submit() must block-and-drain, not fail
  RepairEngine Engine(Options);
  std::vector<JobHandle> Handles;
  for (int I = 0; I < 10; ++I)
    Handles.push_back(Engine.submit(RepairRequest::points(Net, 4, Spec)));
  for (JobHandle &H : Handles)
    expectBitIdentical(H.report().Result, Serial);
}

TEST(RepairEngine, DestructorCancelsQueuedJobs) {
  Rng R(91008);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 12);

  EngineOptions Options;
  Options.NumWorkers = 1;
  auto Engine = std::make_unique<RepairEngine>(Options);

  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Engine->submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();
  JobHandle QueuedA = Engine->submit(RepairRequest::points(Net, 2, Spec));
  JobHandle QueuedB = Engine->submit(RepairRequest::points(Net, 0, Spec));

  // Destroy the engine while the worker is parked: queued jobs must
  // resolve as Cancelled (without running), the blocker must finish.
  std::thread Destroyer([&] { Engine.reset(); });
  EXPECT_EQ(QueuedA.report().Status, RepairStatus::Cancelled);
  EXPECT_EQ(QueuedB.report().Status, RepairStatus::Cancelled);
  Release.set_value();
  Destroyer.join();
  EXPECT_EQ(Blocker.report().Status, RepairStatus::Success);
}

} // namespace
