//===- tests/persist_test.cpp - persistent artifact store tests --------------===//
//
// Covers the persist/ subsystem end to end: codec round-trips for every
// artifact kind and every layer type (bit-exact doubles, NaN payloads
// and -0.0 included); typed rejection of truncated / corrupt /
// version-mismatched frames; the hardened nn/Serialization negative
// paths; atomic store publication under concurrent writers; LRU-by-
// mtime GC at the byte budget; and the L2 determinism contract - cold,
// L1-warm, L2-warm-after-an-engine-restart, and store-off runs are
// bit-for-bit identical at 1/4/8 threads, with a corrupted store entry
// degrading to a recompute. Runs under the CI ThreadSanitizer job next
// to parallel_test, engine_test, and cache_test.
//
//===----------------------------------------------------------------------===//

#include "persist/ArtifactStore.h"
#include "persist/Codec.h"
#include "persist/Serialize.h"

#include "api/RepairEngine.h"
#include "cache/Fingerprint.h"
#include "core/PolytopeRepair.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "nn/Serialization.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace {

using namespace prdnn;
using persist::ArtifactStore;
using persist::ByteReader;
using persist::ByteWriter;
using persist::CodecError;
using persist::FrameView;
using persist::StoreOptions;
using persist::StoreStats;

/// Unique directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path Path;

  explicit TempDir(const std::string &Tag) {
    static std::atomic<int> Counter{0};
    auto Stamp = std::chrono::steady_clock::now().time_since_epoch().count();
    Path = fs::temp_directory_path() /
           ("prdnn-" + Tag + "-" + std::to_string(Stamp) + "-" +
            std::to_string(Counter.fetch_add(1)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 6 -> 16 -> 16 -> 4 ReLU classifier; parameterized layers 0, 2, 4.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 6, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 16, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 16, 0.9), randomVector(R, 4, 0.3)));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

Network makeFigure3Network() {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0}, {1.0}, {1.0}}), Vector{0.0, 0.0, -1.0}));
  Net.addLayer(std::make_unique<ReLULayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0, -1.0, 1.0}}), Vector{0.0}));
  return Net;
}

void expectBitIdentical(const RepairResult &A, const RepairResult &B) {
  ASSERT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.Delta.size(), B.Delta.size());
  for (size_t I = 0; I < A.Delta.size(); ++I)
    EXPECT_EQ(A.Delta[I], B.Delta[I]) << "Delta[" << I << "]";
  EXPECT_EQ(A.DeltaL1, B.DeltaL1);
  EXPECT_EQ(A.DeltaLInf, B.DeltaLInf);
  EXPECT_EQ(A.Stats.SpecRows, B.Stats.SpecRows);
  EXPECT_EQ(A.Stats.LpRowsUsed, B.Stats.LpRowsUsed);
}

CacheKey keyOf(std::uint64_t Tag, ArtifactKind Kind =
                                      ArtifactKind::JacobianRows) {
  Hasher H;
  H.u64(Tag);
  return CacheKey{Kind, H.digest()};
}

std::shared_ptr<JacobianRowsArtifact> makeRowsArtifact(int Rows, int Cols,
                                                       double Seed) {
  auto A = std::make_shared<JacobianRowsArtifact>();
  A->Coef.resize(static_cast<size_t>(Rows));
  A->Hi.resize(static_cast<size_t>(Rows));
  double V = Seed;
  for (int R = 0; R < Rows; ++R) {
    A->Coef[static_cast<size_t>(R)].resize(static_cast<size_t>(Cols));
    for (int C = 0; C < Cols; ++C) {
      A->Coef[static_cast<size_t>(R)][static_cast<size_t>(C)] = V;
      V = V * 1.000001 + 0.5;
    }
    A->Hi[static_cast<size_t>(R)] = -V;
  }
  return A;
}

// --- Codec ------------------------------------------------------------------

TEST(Codec, PrimitiveRoundTrip) {
  ByteWriter W;
  W.u8(0xab);
  W.u32(0xdeadbeefu);
  W.u64(0x0123456789abcdefull);
  W.i32(-7);
  W.i64(-1234567890123ll);
  W.f64(-0.0);
  W.f64(std::numeric_limits<double>::quiet_NaN());
  W.str("prdnn");
  const double Doubles[3] = {1.5, -2.25, 1e-300};
  W.doubles(Doubles, 3);

  ByteReader R(W.buffer().data(), W.buffer().size());
  std::uint8_t U8;
  std::uint32_t U32;
  std::uint64_t U64;
  int I32;
  std::int64_t I64;
  double NegZero, Nan;
  std::string S;
  double Out[3];
  EXPECT_TRUE(R.u8(U8));
  EXPECT_TRUE(R.u32(U32));
  EXPECT_TRUE(R.u64(U64));
  EXPECT_TRUE(R.i32(I32));
  EXPECT_TRUE(R.i64(I64));
  EXPECT_TRUE(R.f64(NegZero));
  EXPECT_TRUE(R.f64(Nan));
  EXPECT_TRUE(R.str(S));
  EXPECT_TRUE(R.doubles(Out, 3));
  EXPECT_EQ(R.remaining(), 0u);
  EXPECT_TRUE(R.ok());

  EXPECT_EQ(U8, 0xab);
  EXPECT_EQ(U32, 0xdeadbeefu);
  EXPECT_EQ(U64, 0x0123456789abcdefull);
  EXPECT_EQ(I32, -7);
  EXPECT_EQ(I64, -1234567890123ll);
  EXPECT_TRUE(std::signbit(NegZero) && NegZero == 0.0);
  EXPECT_TRUE(std::isnan(Nan));
  EXPECT_EQ(S, "prdnn");
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Out[I], Doubles[I]);

  // Over-reading fails sticky with Truncated.
  EXPECT_FALSE(R.u8(U8));
  EXPECT_EQ(R.error(), CodecError::Truncated);
  EXPECT_FALSE(R.u64(U64));
}

TEST(Codec, FrameRoundTripAndTypedRejection) {
  ByteWriter W;
  W.str("payload bytes of some artifact");
  W.f64(-0.0);
  std::vector<std::uint8_t> Blob = persist::frame(7, W.buffer());

  FrameView View;
  ASSERT_EQ(persist::unframe(Blob.data(), Blob.size(), View),
            CodecError::None);
  EXPECT_EQ(View.BlobKind, 7);
  EXPECT_EQ(View.PayloadSize, W.buffer().size());
  EXPECT_EQ(std::memcmp(View.Payload, W.buffer().data(), View.PayloadSize),
            0);

  // Truncation anywhere - header, payload, trailer - is typed.
  for (std::size_t Cut : {std::size_t(0), std::size_t(3), std::size_t(12),
                          Blob.size() - 17, Blob.size() - 1})
    EXPECT_EQ(persist::unframe(Blob.data(), Cut, View),
              CodecError::Truncated)
        << "cut at " << Cut;

  // Foreign magic.
  std::vector<std::uint8_t> Foreign = Blob;
  Foreign[0] = 'X';
  EXPECT_EQ(persist::unframe(Foreign.data(), Foreign.size(), View),
            CodecError::BadMagic);

  // Future format version.
  std::vector<std::uint8_t> Versioned = Blob;
  Versioned[4] = static_cast<std::uint8_t>(persist::kFormatVersion + 1);
  EXPECT_EQ(persist::unframe(Versioned.data(), Versioned.size(), View),
            CodecError::BadVersion);

  // Byte-swapped endian tag reads as a foreign-endian producer.
  std::vector<std::uint8_t> Swapped = Blob;
  std::swap(Swapped[8], Swapped[11]);
  std::swap(Swapped[9], Swapped[10]);
  EXPECT_EQ(persist::unframe(Swapped.data(), Swapped.size(), View),
            CodecError::ForeignEndian);

  // A flipped payload bit fails the digest trailer.
  std::vector<std::uint8_t> Flipped = Blob;
  Flipped[21] ^= 0x40;
  EXPECT_EQ(persist::unframe(Flipped.data(), Flipped.size(), View),
            CodecError::Corrupt);

  // Trailing garbage after the trailer is rejected, not ignored.
  std::vector<std::uint8_t> Padded = Blob;
  Padded.push_back(0);
  EXPECT_EQ(persist::unframe(Padded.data(), Padded.size(), View),
            CodecError::Corrupt);
}

// --- Artifact serializers ---------------------------------------------------

TEST(Serialize, JacobianRowsRoundTripBitExact) {
  auto A = makeRowsArtifact(5, 9, 0.125);
  // Adversarial values the "same bits" contract must preserve.
  A->Coef[0][0] = -0.0;
  A->Coef[1][2] = std::numeric_limits<double>::quiet_NaN();
  A->Hi[4] = std::numeric_limits<double>::infinity();

  ByteWriter W;
  persist::serializeArtifact(*A, ArtifactKind::JacobianRows, W);
  ByteReader R(W.buffer().data(), W.buffer().size());
  auto Back = std::static_pointer_cast<const JacobianRowsArtifact>(
      persist::deserializeArtifact(ArtifactKind::JacobianRows, R));
  ASSERT_NE(Back, nullptr);
  ASSERT_EQ(Back->Coef.size(), A->Coef.size());
  for (size_t I = 0; I < A->Coef.size(); ++I) {
    ASSERT_EQ(Back->Coef[I].size(), A->Coef[I].size());
    for (size_t J = 0; J < A->Coef[I].size(); ++J) {
      std::uint64_t Want, Got;
      std::memcpy(&Want, &A->Coef[I][J], 8);
      std::memcpy(&Got, &Back->Coef[I][J], 8);
      EXPECT_EQ(Got, Want) << "Coef[" << I << "][" << J << "]";
    }
  }
  for (size_t I = 0; I < A->Hi.size(); ++I) {
    std::uint64_t Want, Got;
    std::memcpy(&Want, &A->Hi[I], 8);
    std::memcpy(&Got, &Back->Hi[I], 8);
    EXPECT_EQ(Got, Want);
  }

  // Truncated payload: typed failure, no partial artifact. (The exact
  // code depends on where the cut lands - a count whose data is gone
  // reads as Corrupt via the plausibility guard, a cut mid-field as
  // Truncated - but it is never None.)
  ByteReader Short(W.buffer().data(), W.buffer().size() - 3);
  EXPECT_EQ(persist::deserializeArtifact(ArtifactKind::JacobianRows, Short),
            nullptr);
  EXPECT_NE(Short.error(), CodecError::None);
}

TEST(Serialize, SyrennTransformRoundTrip) {
  auto A = std::make_shared<SyrennTransformArtifact>();
  LinePartition Line;
  Line.A = Vector{0.25, -1.5};
  Line.B = Vector{2.0, 3.5};
  Line.Ts = {0.0, 0.125, 0.875, 1.0};
  A->Partitions.push_back(Line);
  PlaneRegion Region;
  Region.InputVertices = {Vector{0.0, 0.0, 1.0}, Vector{1.0, 0.0, -0.0},
                          Vector{0.0, 1.0, 2.5}};
  Region.PlaneVertices = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  A->Partitions.push_back(std::vector<PlaneRegion>{Region});

  ByteWriter W;
  persist::serializeArtifact(*A, ArtifactKind::SyrennTransform, W);
  ByteReader R(W.buffer().data(), W.buffer().size());
  auto Back = std::static_pointer_cast<const SyrennTransformArtifact>(
      persist::deserializeArtifact(ArtifactKind::SyrennTransform, R));
  ASSERT_NE(Back, nullptr);
  ASSERT_EQ(Back->Partitions.size(), 2u);

  const auto &BackLine = std::get<LinePartition>(Back->Partitions[0]);
  EXPECT_EQ(BackLine.Ts, Line.Ts);
  for (int I = 0; I < Line.A.size(); ++I) {
    EXPECT_EQ(BackLine.A[I], Line.A[I]);
    EXPECT_EQ(BackLine.B[I], Line.B[I]);
  }
  const auto &BackRegions =
      std::get<std::vector<PlaneRegion>>(Back->Partitions[1]);
  ASSERT_EQ(BackRegions.size(), 1u);
  ASSERT_EQ(BackRegions[0].InputVertices.size(), 3u);
  for (size_t V = 0; V < 3; ++V) {
    for (int I = 0; I < 3; ++I)
      EXPECT_EQ(BackRegions[0].InputVertices[V][I],
                Region.InputVertices[V][I]);
    EXPECT_EQ(BackRegions[0].PlaneVertices[V], Region.PlaneVertices[V]);
  }

  // An unknown partition tag is Corrupt, not UB.
  std::vector<std::uint8_t> Bad(W.buffer());
  Bad[8] = 9; // the first partition's tag byte (after the u64 count)
  ByteReader BadR(Bad.data(), Bad.size());
  EXPECT_EQ(persist::deserializeArtifact(ArtifactKind::SyrennTransform, BadR),
            nullptr);
}

TEST(Serialize, PatternBatchRoundTrip) {
  auto A = std::make_shared<PatternBatchArtifact>();
  NetworkPattern P1;
  P1.Patterns = {{}, {1, 0, 1}, {}, {-1, 0, 1, 2}};
  NetworkPattern P2;
  P2.Patterns = {{0}, {}};
  A->Patterns = {P1, P2};

  ByteWriter W;
  persist::serializeArtifact(*A, ArtifactKind::PatternBatch, W);
  ByteReader R(W.buffer().data(), W.buffer().size());
  auto Back = std::static_pointer_cast<const PatternBatchArtifact>(
      persist::deserializeArtifact(ArtifactKind::PatternBatch, R));
  ASSERT_NE(Back, nullptr);
  ASSERT_EQ(Back->Patterns.size(), 2u);
  EXPECT_TRUE(Back->Patterns[0] == P1);
  EXPECT_TRUE(Back->Patterns[1] == P2);
}

TEST(Serialize, SimplexBasisRoundTripAndCorruptRejection) {
  auto A = std::make_shared<SimplexBasisArtifact>();
  A->NumRows = 3;
  A->NumVars = 8;
  A->Basic = {7, 0, 4};
  A->NonbasicState = {0, 1, 2, 3, 0, 1, 2, 0};
  A->Pivots = 217;
  A->RhsDigest = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};

  ByteWriter W;
  persist::serializeArtifact(*A, ArtifactKind::SimplexBasis, W);
  ByteReader R(W.buffer().data(), W.buffer().size());
  auto Back = std::static_pointer_cast<const SimplexBasisArtifact>(
      persist::deserializeArtifact(ArtifactKind::SimplexBasis, R));
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Back->NumRows, A->NumRows);
  EXPECT_EQ(Back->NumVars, A->NumVars);
  EXPECT_EQ(Back->Basic, A->Basic);
  EXPECT_EQ(Back->NonbasicState, A->NonbasicState);
  EXPECT_EQ(Back->Pivots, A->Pivots);
  EXPECT_TRUE(Back->RhsDigest == A->RhsDigest);

  // Structurally incoherent payloads are Corrupt, not accepted: a
  // status byte outside the VarStatus range ...
  {
    auto Bad = std::make_shared<SimplexBasisArtifact>(*A);
    Bad->NonbasicState[2] = 9;
    ByteWriter BW;
    persist::serializeArtifact(*Bad, ArtifactKind::SimplexBasis, BW);
    ByteReader BR(BW.buffer().data(), BW.buffer().size());
    EXPECT_EQ(persist::deserializeArtifact(ArtifactKind::SimplexBasis, BR),
              nullptr);
    EXPECT_EQ(BR.error(), CodecError::Corrupt);
  }
  // ... or a basic index outside [0, NumVars).
  {
    auto Bad = std::make_shared<SimplexBasisArtifact>(*A);
    Bad->Basic[1] = Bad->NumVars;
    ByteWriter BW;
    persist::serializeArtifact(*Bad, ArtifactKind::SimplexBasis, BW);
    ByteReader BR(BW.buffer().data(), BW.buffer().size());
    EXPECT_EQ(persist::deserializeArtifact(ArtifactKind::SimplexBasis, BR),
              nullptr);
    EXPECT_EQ(BR.error(), CodecError::Corrupt);
  }
}

// --- Network serialization --------------------------------------------------

/// A network exercising every PWL layer kind the library has.
Network makeEveryPwlLayerNetwork(Rng &R) {
  Network Net;
  // 2ch 4x4 input.
  Net.addLayer(std::make_unique<Conv2DLayer>(
      2, 4, 4, 3, 3, 3, 1, 1,
      [&] {
        std::vector<double> K(2 * 3 * 3 * 3);
        for (double &V : K)
          V = 0.3 * R.normal();
        return K;
      }(),
      std::vector<double>{0.1, -0.2, 0.05}));
  Net.addLayer(std::make_unique<ReLULayer>(3 * 4 * 4));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(3, 4, 4, 2, 2, 2));
  Net.addLayer(std::make_unique<AvgPool2DLayer>(3, 2, 2, 2, 2, 2));
  Net.addLayer(std::make_unique<FlattenLayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 5, 3, 0.8), randomVector(R, 5, 0.2)));
  Net.addLayer(std::make_unique<LeakyReLULayer>(5, 0.01));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 5, 0.8), randomVector(R, 4, 0.2)));
  Net.addLayer(std::make_unique<HardTanhLayer>(4));
  return Net;
}

TEST(Serialize, NetworkRoundTripEveryLayerKind) {
  Rng R(5501);
  Network Net = makeEveryPwlLayerNetwork(R);

  ByteWriter W;
  persist::serializeNetwork(Net, W);
  ByteReader Reader(W.buffer().data(), W.buffer().size());
  std::optional<Network> Back = persist::deserializeNetwork(Reader);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Reader.remaining(), 0u);
  // The fingerprint hashes topology, geometry, and every parameter's
  // bit pattern: equality is bit-exactness of the whole network.
  EXPECT_EQ(fingerprintNetwork(*Back), fingerprintNetwork(Net));
  Vector X = randomVector(R, Net.inputSize());
  Vector Want = Net.evaluate(X);
  Vector Got = Back->evaluate(X);
  for (int I = 0; I < Want.size(); ++I)
    EXPECT_EQ(Got[I], Want[I]);

  // Smooth activations round-trip too.
  Network Smooth;
  Smooth.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 3, 2, 0.9), randomVector(R, 3, 0.1)));
  Smooth.addLayer(std::make_unique<TanhLayer>(3));
  Smooth.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 2, 3, 0.9), randomVector(R, 2, 0.1)));
  Smooth.addLayer(std::make_unique<SigmoidLayer>(2));
  ByteWriter W2;
  persist::serializeNetwork(Smooth, W2);
  ByteReader Reader2(W2.buffer().data(), W2.buffer().size());
  std::optional<Network> Back2 = persist::deserializeNetwork(Reader2);
  ASSERT_TRUE(Back2.has_value());
  EXPECT_EQ(fingerprintNetwork(*Back2), fingerprintNetwork(Smooth));
}

TEST(Serialize, NetworkBinaryFileRoundTripAndTypedErrors) {
  TempDir Dir("netbin");
  Rng R(5502);
  Network Net = makeEveryPwlLayerNetwork(R);
  const std::string Path = (Dir.Path / "net.bin").string();
  ASSERT_TRUE(persist::saveNetworkBinary(Net, Path));

  CodecError Error = CodecError::Corrupt;
  std::optional<Network> Back = persist::loadNetworkBinary(Path, &Error);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Error, CodecError::None);
  EXPECT_EQ(fingerprintNetwork(*Back), fingerprintNetwork(Net));

  // loadNetwork auto-detects the binary magic.
  std::optional<Network> Auto = loadNetwork(Path);
  ASSERT_TRUE(Auto.has_value());
  EXPECT_EQ(fingerprintNetwork(*Auto), fingerprintNetwork(Net));

  // Truncated file: typed error, no partial network.
  std::vector<char> Bytes;
  {
    std::ifstream Is(Path, std::ios::binary);
    Bytes.assign((std::istreambuf_iterator<char>(Is)),
                 std::istreambuf_iterator<char>());
  }
  const std::string Cut = (Dir.Path / "cut.bin").string();
  {
    std::ofstream Os(Cut, std::ios::binary);
    Os.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size() / 2));
  }
  EXPECT_FALSE(persist::loadNetworkBinary(Cut, &Error).has_value());
  EXPECT_EQ(Error, CodecError::Truncated);
  EXPECT_FALSE(loadNetwork(Cut).has_value());

  // A flipped parameter byte fails the digest: Corrupt.
  const std::string Rot = (Dir.Path / "rot.bin").string();
  {
    std::vector<char> Bad = Bytes;
    Bad[Bad.size() / 2] ^= 0x10;
    std::ofstream Os(Rot, std::ios::binary);
    Os.write(Bad.data(), static_cast<std::streamsize>(Bad.size()));
  }
  EXPECT_FALSE(persist::loadNetworkBinary(Rot, &Error).has_value());
  EXPECT_EQ(Error, CodecError::Corrupt);

  // Not a frame at all.
  const std::string Text = (Dir.Path / "text.bin").string();
  {
    std::ofstream Os(Text);
    Os << "prdnn-network v1\nlayers 0\n";
  }
  EXPECT_FALSE(persist::loadNetworkBinary(Text, &Error).has_value());
  EXPECT_EQ(Error, CodecError::BadMagic);
  // ...but loadNetwork happily parses it as text.
  EXPECT_TRUE(loadNetwork(Text).has_value());
}

TEST(Serialize, TextReaderRejectsMalformedInput) {
  auto Parse = [](const std::string &Text) {
    std::istringstream Is(Text);
    return readNetwork(Is);
  };
  // Truncated parameter list.
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nfc 2 2\n1 2 3\n"));
  // Negative / zero dimensions.
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nfc -2 2\n"));
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nrelu 0\n"));
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nflatten -5\n"));
  // Absurd dimensions must fail validation, not allocate.
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nfc 2000000000 2000000000\n"));
  // Dimensions that each pass the per-axis bound but whose *product*
  // would overflow 64-bit (65536^4 = 2^64) or explode the activation
  // size must be rejected by the overflow-safe product checks.
  EXPECT_FALSE(Parse(
      "prdnn-network v1\nlayers 1\nconv 65536 65536 65536 65536 65536 "
      "65536 1 0\n"));
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\navgpool 4194304 4194304 "
                     "4194304 4194304 4194304 1\n"));
  // Conv geometry: kernel larger than padded input; negative stride.
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nconv 1 2 2 1 5 5 1 0\n"));
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nconv 1 4 4 1 2 2 -1 0\n"));
  // Pool windows must tile the input exactly (the constructor only
  // asserts this; the reader must validate it).
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nmaxpool 1 5 5 2 2 2\n"));
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\navgpool 1 4 4 8 8 2\n"));
  // Adjacent layer sizes must chain.
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 2\nrelu 4\nrelu 5\n"));
  // Unknown layer kind.
  EXPECT_FALSE(Parse("prdnn-network v1\nlayers 1\nsoftmax 4\n"));
  // Sane input still parses.
  EXPECT_TRUE(Parse("prdnn-network v1\nlayers 2\nfc 2 3\n1 2 3 4 5 6 7 8\n"
                    "relu 2\n"));
}

// --- ArtifactStore ----------------------------------------------------------

TEST(ArtifactStore, StoreLoadRoundTripAndMiss) {
  TempDir Dir("store");
  StoreOptions Options;
  Options.Directory = Dir.str();
  ArtifactStore Store(Options);

  auto A = makeRowsArtifact(4, 6, 1.5);
  Store.storeSync(keyOf(1), *A);
  EXPECT_EQ(Store.stats().Writes, 1u);
  EXPECT_EQ(Store.stats().Entries, 1u);
  EXPECT_GT(Store.stats().BytesHeld, 0u);

  auto Loaded = std::static_pointer_cast<const JacobianRowsArtifact>(
      Store.load(keyOf(1)));
  ASSERT_NE(Loaded, nullptr);
  EXPECT_EQ(Loaded->Coef, A->Coef);
  EXPECT_EQ(Loaded->Hi, A->Hi);
  EXPECT_EQ(Store.stats().Hits, 1u);

  EXPECT_EQ(Store.load(keyOf(2)), nullptr);
  EXPECT_EQ(Store.stats().Misses, 1u);

  // Re-storing an existing key is a dedupe skip, not a second write.
  Store.storeSync(keyOf(1), *A);
  EXPECT_EQ(Store.stats().Writes, 1u);
  EXPECT_EQ(Store.stats().WriteSkips, 1u);

  // A second store on the same directory sees the entry (restart /
  // cross-process sharing).
  ArtifactStore Second(Options);
  EXPECT_EQ(Second.stats().Entries, 1u);
  EXPECT_NE(Second.load(keyOf(1)), nullptr);
}

TEST(ArtifactStore, WriteBehindFlushAndKindMismatch) {
  TempDir Dir("async");
  StoreOptions Options;
  Options.Directory = Dir.str();
  ArtifactStore Store(Options);

  auto A = makeRowsArtifact(3, 3, -2.0);
  Store.storeAsync(keyOf(7), A);
  Store.flush();
  EXPECT_EQ(Store.stats().Writes, 1u);
  EXPECT_EQ(Store.stats().PendingWrites, 0u);
  EXPECT_NE(Store.load(keyOf(7)), nullptr);

  // The same digest under a different kind is a different entry.
  EXPECT_EQ(Store.load(keyOf(7, ArtifactKind::PatternBatch)), nullptr);
}

TEST(ArtifactStore, CorruptEntryIsSkippedAndDeleted) {
  TempDir Dir("corrupt");
  StoreOptions Options;
  Options.Directory = Dir.str();
  ArtifactStore Store(Options);

  auto A = makeRowsArtifact(4, 4, 3.0);
  Store.storeSync(keyOf(3), *A);
  const std::string Path = Store.entryPath(keyOf(3));
  ASSERT_TRUE(fs::exists(Path));

  // Flip one payload byte: the digest trailer must catch it.
  {
    std::fstream F(Path,
                   std::ios::binary | std::ios::in | std::ios::out);
    F.seekp(30);
    char C;
    F.seekg(30);
    F.get(C);
    F.seekp(30);
    F.put(static_cast<char>(C ^ 0x20));
  }
  EXPECT_EQ(Store.load(keyOf(3)), nullptr);
  EXPECT_EQ(Store.stats().CorruptSkips, 1u);
  EXPECT_FALSE(fs::exists(Path)) << "corrupt entry not deleted";

  // Truncated entry likewise.
  Store.storeSync(keyOf(4), *A);
  const std::string Path4 = Store.entryPath(keyOf(4));
  fs::resize_file(Path4, fs::file_size(Path4) / 2);
  EXPECT_EQ(Store.load(keyOf(4)), nullptr);
  EXPECT_EQ(Store.stats().CorruptSkips, 2u);
}

TEST(ArtifactStore, GcEvictsOldestAtBudget) {
  TempDir Dir("gc");
  auto A = makeRowsArtifact(8, 32, 0.75); // ~2.3 KiB serialized
  std::uint64_t EntryBytes;
  {
    StoreOptions Options;
    Options.Directory = Dir.str();
    ArtifactStore Store(Options);
    for (std::uint64_t K = 0; K < 5; ++K)
      Store.storeSync(keyOf(100 + K), *A);
    EXPECT_EQ(Store.stats().Entries, 5u);
    EntryBytes = Store.stats().BytesHeld / 5;

    // Backdate entries 100..102 so mtime order is deterministic.
    for (std::uint64_t K = 0; K < 3; ++K)
      fs::last_write_time(Store.entryPath(keyOf(100 + K)),
                          fs::file_time_type::clock::now() -
                              std::chrono::hours(1 + (2 - K)));
  }

  // A store with room for ~2 entries GCs the stale ones on startup.
  StoreOptions Tight;
  Tight.Directory = Dir.str();
  Tight.BudgetBytes = EntryBytes * 2 + EntryBytes / 2;
  ArtifactStore Store(Tight);
  EXPECT_EQ(Store.stats().Evictions, 3u);
  EXPECT_EQ(Store.stats().Entries, 2u);
  EXPECT_LE(Store.stats().BytesHeld, Tight.BudgetBytes);
  // The backdated (oldest) entries went; the fresh ones survived.
  EXPECT_EQ(Store.load(keyOf(100)), nullptr);
  EXPECT_EQ(Store.load(keyOf(101)), nullptr);
  EXPECT_EQ(Store.load(keyOf(102)), nullptr);
  EXPECT_NE(Store.load(keyOf(103)), nullptr);
  EXPECT_NE(Store.load(keyOf(104)), nullptr);
}

TEST(ArtifactStore, SimplexBasisStoreRoundTrip) {
  TempDir Dir("basis");
  StoreOptions Options;
  Options.Directory = Dir.str();
  ArtifactStore Store(Options);

  auto A = std::make_shared<SimplexBasisArtifact>();
  A->NumRows = 2;
  A->NumVars = 6;
  A->Basic = {5, 1};
  A->NonbasicState = {0, 0, 1, 2, 3, 1};
  A->Pivots = 42;
  A->RhsDigest = {11u, 22u};
  Store.storeSync(keyOf(9, ArtifactKind::SimplexBasis), *A);

  auto Back = std::static_pointer_cast<const SimplexBasisArtifact>(
      Store.load(keyOf(9, ArtifactKind::SimplexBasis)));
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Back->Basic, A->Basic);
  EXPECT_EQ(Back->NonbasicState, A->NonbasicState);
  EXPECT_TRUE(Back->RhsDigest == A->RhsDigest);
  // The same digest under another kind is a different entry.
  EXPECT_EQ(Store.load(keyOf(9)), nullptr);
}

TEST(ArtifactStore, ReadHitsAndRepublishesRefreshMtimeForGc) {
  // The store's GC is LRU-by-mtime, so both load() hits and
  // skip-as-duplicate republishes must touch the entry's mtime - an
  // artifact a warm engine keeps *reading* (or keeps re-publishing)
  // is hot, and GC must not treat it as stale just because it was
  // written long ago.
  TempDir Dir("gc-touch");
  auto A = makeRowsArtifact(8, 32, 0.75);
  std::uint64_t EntryBytes;
  {
    StoreOptions Options;
    Options.Directory = Dir.str();
    ArtifactStore Store(Options);
    for (std::uint64_t K = 0; K < 5; ++K)
      Store.storeSync(keyOf(200 + K), *A);
    EntryBytes = Store.stats().BytesHeld / 5;
    // Age everything, then touch three entries the "hot" ways: two by
    // read-hit, one by a republish that dedupe-skips the write.
    for (std::uint64_t K = 0; K < 5; ++K)
      fs::last_write_time(Store.entryPath(keyOf(200 + K)),
                          fs::file_time_type::clock::now() -
                              std::chrono::hours(2));
    EXPECT_NE(Store.load(keyOf(203)), nullptr);
    EXPECT_NE(Store.load(keyOf(204)), nullptr);
    Store.storeSync(keyOf(202), *A);
    EXPECT_EQ(Store.stats().WriteSkips, 1u);
  }

  // Budget for ~3 entries: the two never-touched entries are the
  // oldest and must be the ones evicted.
  StoreOptions Tight;
  Tight.Directory = Dir.str();
  Tight.BudgetBytes = EntryBytes * 3 + EntryBytes / 2;
  ArtifactStore Store(Tight);
  EXPECT_EQ(Store.stats().Evictions, 2u);
  EXPECT_EQ(Store.stats().Entries, 3u);
  EXPECT_EQ(Store.load(keyOf(200)), nullptr);
  EXPECT_EQ(Store.load(keyOf(201)), nullptr);
  EXPECT_NE(Store.load(keyOf(202)), nullptr);
  EXPECT_NE(Store.load(keyOf(203)), nullptr);
  EXPECT_NE(Store.load(keyOf(204)), nullptr);
}

TEST(ArtifactStore, AtomicPublicationUnderConcurrentWriters) {
  TempDir Dir("race");
  StoreOptions Options;
  Options.Directory = Dir.str();
  ArtifactStore Store(Options);

  // 8 writers race on one key while 8 more spray distinct keys; every
  // concurrent load must see either nothing or a fully valid entry -
  // never a torn write (CorruptSkips == 0).
  auto Shared = makeRowsArtifact(6, 24, 0.5);
  std::vector<std::thread> Threads;
  std::atomic<int> LoadedOk{0};
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&, T] {
      ArtifactStore Mine(Options); // own store handle: cross-"process"
      auto Private = makeRowsArtifact(3 + T, 8, 0.25 * T);
      for (int Round = 0; Round < 8; ++Round) {
        Mine.storeSync(keyOf(4242), *Shared);
        Mine.storeSync(keyOf(5000 + static_cast<std::uint64_t>(T)),
                       *Private);
        if (auto Loaded = std::static_pointer_cast<const JacobianRowsArtifact>(
                Mine.load(keyOf(4242)))) {
          ++LoadedOk;
          EXPECT_EQ(Loaded->Coef, Shared->Coef);
        }
      }
      EXPECT_EQ(Mine.stats().CorruptSkips, 0u);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_GT(LoadedOk.load(), 0);
  EXPECT_EQ(Store.stats().CorruptSkips, 0u);

  auto Final = std::static_pointer_cast<const JacobianRowsArtifact>(
      Store.load(keyOf(4242)));
  ASSERT_NE(Final, nullptr);
  EXPECT_EQ(Final->Coef, Shared->Coef);
  for (int T = 0; T < 8; ++T)
    EXPECT_NE(Store.load(keyOf(5000 + static_cast<std::uint64_t>(T))),
              nullptr);
}

// --- Engine integration: the L2 determinism contract ------------------------

TEST(EngineStore, L2WarmRestartBitIdenticalAtAnyThreadCount) {
  TempDir Dir("engine-l2");
  Rng R(6601);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 30);
  RepairRequest Request = RepairRequest::points(Net, 2, Spec);

  // Store-off reference.
  EngineOptions Off;
  Off.EnableCache = false;
  RepairEngine OffEngine(Off);
  RepairReport OffReport = OffEngine.run(Request);

  for (int Threads : {1, 4, 8}) {
    setGlobalThreadCount(Threads);
    // One store directory per thread count, so each iteration's first
    // engine is genuinely cold (content addresses don't depend on the
    // thread count, so a shared directory would already be warm).
    EngineOptions WithStore;
    WithStore.StoreDirectory =
        (Dir.Path / std::to_string(Threads)).string();
    RepairRequest ThreadRequest = Request;
    {
      RepairEngine Cold(WithStore);
      ASSERT_TRUE(Cold.hasStore());
      RepairReport ColdReport = Cold.run(ThreadRequest);
      RepairReport L1Warm = Cold.run(ThreadRequest);
      expectBitIdentical(ColdReport.Result, OffReport.Result);
      expectBitIdentical(L1Warm.Result, OffReport.Result);
      EXPECT_EQ(ColdReport.StoreHits, 0);
      EXPECT_GT(L1Warm.CacheHits, 0);
      EXPECT_EQ(L1Warm.StoreHits, 0); // served from memory, not disk
      Cold.flushStore();
      EXPECT_GT(Cold.storeStats().Writes, 0u);
    } // engine dies; the store directory survives

    // A *fresh* engine on the same directory starts L2-warm: all
    // lookups hit the store, results stay bit-identical.
    RepairEngine Warm(WithStore);
    RepairReport L2Warm = Warm.run(ThreadRequest);
    expectBitIdentical(L2Warm.Result, OffReport.Result);
    EXPECT_GT(L2Warm.StoreHits, 0);
    EXPECT_EQ(L2Warm.CacheHits, L2Warm.StoreHits);
    EXPECT_EQ(L2Warm.CacheMisses, 0);
    EXPECT_GT(L2Warm.Result.Stats.JacobianStoreHits, 0);
    EXPECT_GT(Warm.storeStats().Hits, 0u);

    // And the promoted artifacts serve the next run from L1.
    RepairReport Promoted = Warm.run(ThreadRequest);
    expectBitIdentical(Promoted.Result, OffReport.Result);
    EXPECT_EQ(Promoted.StoreHits, 0);
    EXPECT_GT(Promoted.CacheHits, 0);
  }
  setGlobalThreadCount(defaultThreadCount());
}

TEST(EngineStore, CorruptedEntryDegradesToRecompute) {
  TempDir Dir("engine-corrupt");
  Rng R(6602);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 24);
  RepairRequest Request = RepairRequest::points(Net, 4, Spec);
  RepairResult Serial = repairPoints(*Net, 4, Spec);

  EngineOptions WithStore;
  WithStore.StoreDirectory = Dir.str();
  {
    RepairEngine Cold(WithStore);
    expectBitIdentical(Cold.run(Request).Result, Serial);
    Cold.flushStore();
  }

  // Vandalize every stored entry (truncate to a prefix).
  int Vandalized = 0;
  for (const auto &Entry : fs::recursive_directory_iterator(Dir.Path))
    if (Entry.is_regular_file() &&
        Entry.path().extension() == ".art") {
      fs::resize_file(Entry.path(), fs::file_size(Entry.path()) * 2 / 3);
      ++Vandalized;
    }
  ASSERT_GT(Vandalized, 0);

  RepairEngine Warm(WithStore);
  RepairReport Report = Warm.run(Request);
  expectBitIdentical(Report.Result, Serial); // recomputed, not wrong
  EXPECT_EQ(Report.StoreHits, 0);
  EXPECT_GE(Warm.storeStats().CorruptSkips, 1u);

  // The recompute re-published good bytes: a third engine is warm.
  Warm.flushStore();
  RepairEngine Healed(WithStore);
  RepairReport HealedReport = Healed.run(Request);
  expectBitIdentical(HealedReport.Result, Serial);
  EXPECT_GT(HealedReport.StoreHits, 0);
}

TEST(EngineStore, PolytopeTransformsWarmAcrossRestart) {
  TempDir Dir("engine-poly");
  Network Net = makeFigure3Network();
  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{SegmentPolytope{Vector{0.5}, Vector{1.5}},
                              boxConstraint(Vector{-0.8}, Vector{-0.4})});
  RepairOptions Options;
  Options.RowMargin = 0.0;
  RepairRequest Request = RepairRequest::polytopes(
      RepairRequest::borrow(Net), 0, Spec, Options);
  RepairResult Serial = repairPolytopes(Net, 0, Spec, Options);

  EngineOptions WithStore;
  WithStore.StoreDirectory = Dir.str();
  {
    RepairEngine Cold(WithStore);
    expectBitIdentical(Cold.run(Request).Result, Serial);
    Cold.flushStore();
  }
  RepairEngine Warm(WithStore);
  RepairReport Report = Warm.run(Request);
  expectBitIdentical(Report.Result, Serial);
  EXPECT_EQ(Report.Result.Stats.LinRegionsStoreHits, 1);
  EXPECT_EQ(Report.Result.Stats.PatternStoreHits, 1);
  EXPECT_GT(Report.Result.Stats.JacobianStoreHits, 0);
}

TEST(EngineStore, EightConcurrentJobsShareOneL2Load) {
  TempDir Dir("engine-race");
  Rng R(6603);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 24);
  RepairResult Serial = repairPoints(*Net, 4, Spec);

  EngineOptions WithStore;
  WithStore.StoreDirectory = Dir.str();
  {
    RepairEngine Cold(WithStore);
    Cold.run(RepairRequest::points(Net, 4, Spec));
    Cold.flushStore();
  }

  EngineOptions Concurrent = WithStore;
  Concurrent.NumWorkers = 8;
  RepairEngine Engine(Concurrent);
  std::vector<JobHandle> Handles;
  for (int J = 0; J < 8; ++J)
    Handles.push_back(Engine.submit(RepairRequest::points(Net, 4, Spec)));
  std::int64_t StoreHits = 0;
  for (JobHandle &Handle : Handles) {
    expectBitIdentical(Handle.report().Result, Serial);
    StoreHits += Handle.report().StoreHits;
  }
  // Per distinct key (one Jacobian chunk + one simplex basis per LP
  // solve), one job deserialized from disk inside the single-flight
  // claim; the other seven shared the promoted L1 entry.
  const RepairStats &WarmStats = Handles[0].report().Result.Stats;
  int LpSolves = WarmStats.BasisHits + WarmStats.BasisMisses;
  EXPECT_GT(LpSolves, 0);
  int Keys = 1 + LpSolves;
  EXPECT_EQ(StoreHits, Keys);
  EXPECT_EQ(Engine.storeStats().Hits, static_cast<std::uint64_t>(Keys));
  EXPECT_EQ(Engine.cacheStats().Hits, static_cast<std::uint64_t>(7 * Keys));
}

} // namespace
