//===- tests/obs_test.cpp - observability layer tests ------------------------===//
//
// Covers the obs/ subsystem and its standing invariant: telemetry is a
// pure side-channel. Histogram bucket assignment on the Prometheus
// `le` convention (edge values land in their edge's bucket); exact
// totals under 8-thread concurrent recording (the TSan target);
// snapshot coherence and monotonicity while another thread records;
// registry idempotence by name with type mismatches surfaced as null
// handles; merge over one bucket preset (including the empty
// accumulator adopting the first operand's layout); Prometheus
// exposition well-formedness (no duplicate names, cumulative buckets,
// _sum/_count); the trace ring's capacity bound and Chrome trace
// export; the inertness proof - bit-identical repair results with
// telemetry off, on, and on-while-scraped-concurrently; the RPC
// Metrics exchange agreeing with engine ground truth (and answering an
// empty snapshot for a telemetry-less service); and the uniform reset
// reaching owned instruments and hook-mirrored tier counters alike.
// Runs under the CI ThreadSanitizer job next to engine/serve/rpc.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"

#include "api/RepairEngine.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "rpc/RpcClient.h"
#include "rpc/RpcServer.h"
#include "serve/RepairService.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace {

using namespace prdnn;

/// Unique directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path Path;

  explicit TempDir(const std::string &Tag) {
    static std::atomic<int> Counter{0};
    auto Stamp = std::chrono::steady_clock::now().time_since_epoch().count();
    Path = fs::temp_directory_path() /
           ("prdnn-" + Tag + "-" + std::to_string(Stamp) + "-" +
            std::to_string(Counter.fetch_add(1)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 6 -> 16 -> 16 -> 4 ReLU classifier; parameterized layers 0, 2, 4.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 6, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 16, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 16, 0.9), randomVector(R, 4, 0.3)));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

/// Bit identity of everything the determinism contract names (timing
/// fields are wall-clock and excluded on purpose).
void expectBitIdentical(const RepairReport &A, const RepairReport &B) {
  ASSERT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.RepairedLayer, B.RepairedLayer);
  ASSERT_EQ(A.Result.Delta.size(), B.Result.Delta.size());
  for (size_t I = 0; I < A.Result.Delta.size(); ++I)
    EXPECT_EQ(A.Result.Delta[I], B.Result.Delta[I]) << "Delta[" << I << "]";
  EXPECT_EQ(A.Result.DeltaL1, B.Result.DeltaL1);
  EXPECT_EQ(A.Result.DeltaLInf, B.Result.DeltaLInf);
  ASSERT_EQ(A.Sweep.size(), B.Sweep.size());
  for (size_t I = 0; I < A.Sweep.size(); ++I) {
    EXPECT_EQ(A.Sweep[I].LayerIndex, B.Sweep[I].LayerIndex);
    EXPECT_EQ(A.Sweep[I].Status, B.Sweep[I].Status);
    EXPECT_EQ(A.Sweep[I].DeltaL1, B.Sweep[I].DeltaL1);
  }
}

// --- Instruments ------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketBoundariesFollowLeConvention) {
  obs::Histogram H({1.0, 2.0, 5.0});
  // A value exactly on an edge belongs to that edge's bucket.
  H.observe(0.5);  // bucket 0 (le 1)
  H.observe(1.0);  // bucket 0 (le 1): on-edge
  H.observe(1.5);  // bucket 1 (le 2)
  H.observe(2.0);  // bucket 1 (le 2): on-edge
  H.observe(5.0);  // bucket 2 (le 5): on-edge
  H.observe(5.0000001); // overflow
  H.observe(1e9);       // overflow

  obs::HistogramSnapshot S = H.snapshot();
  ASSERT_EQ(S.Edges, (std::vector<double>{1.0, 2.0, 5.0}));
  ASSERT_EQ(S.Counts.size(), 4u);
  EXPECT_EQ(S.Counts[0], 2u);
  EXPECT_EQ(S.Counts[1], 2u);
  EXPECT_EQ(S.Counts[2], 1u);
  EXPECT_EQ(S.Counts[3], 2u);
  EXPECT_EQ(S.count(), 7u);
  EXPECT_DOUBLE_EQ(S.Sum, 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 5.0000001 + 1e9);

  H.reset();
  EXPECT_EQ(H.snapshot().count(), 0u);
  EXPECT_EQ(H.snapshot().Sum, 0.0);
}

TEST(ObsMetrics, QuantileWalksBucketsAndClampsOverflow) {
  obs::Histogram H({1.0, 2.0, 4.0});
  for (int I = 0; I < 100; ++I)
    H.observe(0.5); // all in bucket 0
  obs::HistogramSnapshot S = H.snapshot();
  // All mass in [0, 1]: every quantile interpolates inside that bucket.
  EXPECT_GT(S.quantile(0.5), 0.0);
  EXPECT_LE(S.quantile(0.5), 1.0);
  EXPECT_LE(S.quantile(0.99), 1.0);

  // An overflow-bucket rank clamps to the last finite edge.
  obs::Histogram O({1.0, 2.0, 4.0});
  for (int I = 0; I < 10; ++I)
    O.observe(100.0);
  EXPECT_EQ(O.snapshot().quantile(0.99), 4.0);

  // Empty histogram quantiles are 0.
  EXPECT_EQ(obs::Histogram({1.0}).snapshot().quantile(0.5), 0.0);
}

TEST(ObsMetrics, ConcurrentRecordingIsExactAfterJoin) {
  // The TSan target: 8 threads hammer one counter and one histogram;
  // after join the totals are exact (sharded relaxed atomics lose
  // nothing, they only defer visibility).
  obs::Counter C;
  obs::Gauge G;
  obs::Histogram H(obs::defaultLatencyBuckets());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < kPerThread; ++I) {
        C.inc();
        H.observe(0.001 * (T + 1));
        G.set(double(T));
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  EXPECT_EQ(C.value(), double(kThreads * kPerThread));
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.count(), std::uint64_t(kThreads) * kPerThread);
  double WantSum = 0.0;
  for (int T = 0; T < kThreads; ++T)
    WantSum += kPerThread * 0.001 * (T + 1);
  EXPECT_NEAR(S.Sum, WantSum, 1e-6 * WantSum);
  // Gauge is last-writer-wins: some thread's ordinal survived.
  EXPECT_GE(G.value(), 0.0);
  EXPECT_LT(G.value(), double(kThreads));
}

TEST(ObsMetrics, SnapshotsAreCoherentAndMonotoneWhileRecording) {
  obs::MetricsRegistry Registry;
  obs::Counter *C = Registry.counter("prdnn_test_ops_total", "ops");
  obs::Histogram *H =
      Registry.histogram("prdnn_test_op_seconds", {0.001, 0.01, 0.1}, "lat");
  ASSERT_NE(C, nullptr);
  ASSERT_NE(H, nullptr);

  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      C->inc();
      H->observe(0.005);
    }
  });

  // Each snapshot is internally coherent (a histogram's count equals
  // the sum of its buckets by construction of the snapshot) and the
  // series is monotone: counters and bucket counts never go backwards.
  std::uint64_t LastCount = 0;
  double LastCounter = 0.0;
  for (int Round = 0; Round < 50; ++Round) {
    obs::MetricsSnapshot Snapshot = Registry.snapshot();
    const obs::MetricSample *Ops = Snapshot.find("prdnn_test_ops_total");
    const obs::MetricSample *Lat = Snapshot.find("prdnn_test_op_seconds");
    ASSERT_NE(Ops, nullptr);
    ASSERT_NE(Lat, nullptr);
    EXPECT_GE(Ops->Value, LastCounter);
    LastCounter = Ops->Value;
    std::uint64_t BucketSum = 0;
    for (std::uint64_t Count : Lat->Hist.Counts)
      BucketSum += Count;
    EXPECT_EQ(Lat->Hist.count(), BucketSum);
    EXPECT_GE(Lat->Hist.count(), LastCount);
    LastCount = Lat->Hist.count();
  }
  Stop.store(true);
  Writer.join();

  // After join the two instruments agree exactly.
  obs::MetricsSnapshot Final = Registry.snapshot();
  EXPECT_EQ(Final.value("prdnn_test_ops_total"),
            double(Final.find("prdnn_test_op_seconds")->Hist.count()));
}

TEST(ObsMetrics, RegistryIsIdempotentByNameAndNullOnTypeMismatch) {
  obs::MetricsRegistry Registry;
  obs::Counter *C1 = Registry.counter("prdnn_test_total", "help");
  obs::Counter *C2 = Registry.counter("prdnn_test_total");
  ASSERT_NE(C1, nullptr);
  EXPECT_EQ(C1, C2) << "same name + type returns the same instrument";

  // A name reused with a different type is a wiring bug surfaced as a
  // null (no-op) handle, never UB.
  EXPECT_EQ(Registry.gauge("prdnn_test_total"), nullptr);
  EXPECT_EQ(Registry.histogram("prdnn_test_total", {1.0}), nullptr);

  obs::Gauge *G = Registry.gauge("prdnn_test_depth");
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(Registry.gauge("prdnn_test_depth"), G);
  EXPECT_EQ(Registry.counter("prdnn_test_depth"), nullptr);

  // Snapshot lists each name once, in registration order.
  C1->add(3.0);
  G->set(7.0);
  obs::MetricsSnapshot Snapshot = Registry.snapshot();
  ASSERT_EQ(Snapshot.Samples.size(), 2u);
  EXPECT_EQ(Snapshot.Samples[0].Name, "prdnn_test_total");
  EXPECT_EQ(Snapshot.Samples[1].Name, "prdnn_test_depth");
  EXPECT_EQ(Snapshot.value("prdnn_test_total"), 3.0);
  EXPECT_EQ(Snapshot.value("prdnn_test_depth"), 7.0);
  EXPECT_EQ(Snapshot.value("prdnn_test_absent"), 0.0);
  EXPECT_EQ(Snapshot.find("prdnn_test_absent"), nullptr);
}

TEST(ObsMetrics, SnapshotMergeAdoptsLayoutOnceAndRejectsMismatches) {
  obs::Histogram A({1.0, 2.0});
  obs::Histogram B({1.0, 2.0});
  A.observe(0.5);
  A.observe(1.5);
  B.observe(3.0);

  // A default-constructed accumulator adopts the first operand's
  // layout - the fleet benches' parent-side merge.
  obs::HistogramSnapshot Total;
  ASSERT_TRUE(Total.merge(A.snapshot()));
  ASSERT_TRUE(Total.merge(B.snapshot()));
  EXPECT_EQ(Total.count(), 3u);
  EXPECT_EQ(Total.Counts[0], 1u);
  EXPECT_EQ(Total.Counts[1], 1u);
  EXPECT_EQ(Total.Counts[2], 1u);
  EXPECT_DOUBLE_EQ(Total.Sum, 5.0);

  // Merging across bucket presets is undefined and refused unchanged.
  obs::Histogram Other({1.0, 2.0, 4.0});
  Other.observe(0.5);
  EXPECT_FALSE(Total.merge(Other.snapshot()));
  EXPECT_EQ(Total.count(), 3u);
}

TEST(ObsMetrics, PrometheusExpositionIsWellFormed) {
  obs::MetricsRegistry Registry;
  Registry.counter("prdnn_test_jobs_total", "Jobs seen")->add(5);
  Registry.gauge("prdnn_test_depth", "Queue depth")->set(2);
  obs::Histogram *H =
      Registry.histogram("prdnn_test_seconds", {0.1, 1.0}, "Latency");
  H->observe(0.05);
  H->observe(0.5);
  H->observe(2.0);
  double External = 41.0;
  Registry.addCollector(&External, "prdnn_test_external_total",
                        obs::MetricType::Counter, "Mirrored",
                        [&External] { return External; });

  std::string Text = Registry.renderPrometheus();
  EXPECT_NE(Text.find("# HELP prdnn_test_jobs_total Jobs seen"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE prdnn_test_jobs_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_jobs_total 5"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE prdnn_test_depth gauge"), std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_depth 2"), std::string::npos);
  // Histogram buckets cumulate at render time and end with +Inf.
  EXPECT_NE(Text.find("prdnn_test_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_seconds_count 3"), std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_seconds_sum"), std::string::npos);
  EXPECT_NE(Text.find("prdnn_test_external_total 41"), std::string::npos);

  // No metric name is emitted twice (the duplicate-name check the CI
  // exposition-parse step runs on real output).
  std::set<std::string> Names;
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::string Name = Line.substr(7, Line.find(' ', 7) - 7);
      EXPECT_TRUE(Names.insert(Name).second) << "duplicate: " << Name;
    }
  }
  EXPECT_EQ(Names.size(), 4u);

  Registry.removeOwner(&External);
  EXPECT_EQ(Registry.snapshot().find("prdnn_test_external_total"), nullptr);
}

TEST(ObsMetrics, UniformResetZeroesInstrumentsAndRunsHooks) {
  obs::MetricsRegistry Registry;
  obs::Counter *C = Registry.counter("prdnn_test_total");
  obs::Histogram *H = Registry.histogram("prdnn_test_seconds", {1.0});
  C->add(10);
  H->observe(0.5);
  std::uint64_t External = 9;
  Registry.addCollector(&External, "prdnn_test_external_total",
                        obs::MetricType::Counter, "",
                        [&External] { return double(External); });
  Registry.addResetHook(&External, [&External] { External = 0; });

  Registry.reset();
  EXPECT_EQ(C->value(), 0.0);
  EXPECT_EQ(H->snapshot().count(), 0u);
  EXPECT_EQ(External, 0u) << "reset hooks reach hook-mirrored counters";
  EXPECT_EQ(Registry.snapshot().value("prdnn_test_external_total"), 0.0);
}

// --- Trace ring -------------------------------------------------------------

TEST(ObsTrace, RingKeepsMostRecentAndCountsDrops) {
  obs::TraceBuffer Ring(/*Capacity=*/4);
  for (std::uint64_t I = 1; I <= 10; ++I) {
    obs::TraceEvent Event;
    Event.JobId = I;
    Event.Name = "Jacobian";
    Event.StartNanos = I * 1000;
    Event.DurationNanos = 500;
    Ring.record(Event);
  }
  EXPECT_EQ(Ring.recorded(), 10u);
  EXPECT_EQ(Ring.dropped(), 6u);

  // Most recent spans survive, oldest first.
  std::vector<obs::TraceEvent> Events = Ring.events();
  ASSERT_EQ(Events.size(), 4u);
  for (std::size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Events[I].JobId, 7 + I);

  Ring.clear();
  EXPECT_EQ(Ring.events().size(), 0u);
  EXPECT_EQ(Ring.recorded(), 0u);
}

TEST(ObsTrace, ChromeTraceExportCarriesSpansAndArgs) {
  obs::TraceBuffer Ring;
  obs::TraceEvent Event;
  Event.JobId = 42;
  Event.Name = "Lp";
  Event.ThreadId = 3;
  Event.StartNanos = 5000;
  Event.DurationNanos = 2000;
  Event.SweepLayer = 2;
  Event.CacheHits = 7;
  Ring.record(Event);

  std::string Json = Ring.exportChromeTrace();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"Lp\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"job\":42"), std::string::npos);
  EXPECT_NE(Json.find("\"sweep_layer\":2"), std::string::npos);
  EXPECT_NE(Json.find("\"cache_hits\":7"), std::string::npos);

  TempDir Dir("obs-trace");
  std::string Path = (Dir.Path / "trace.json").string();
  ASSERT_TRUE(Ring.writeChromeTrace(Path));
  EXPECT_GT(fs::file_size(Path), 0u);
  EXPECT_FALSE(Ring.writeChromeTrace((Dir.Path / "no" / "dir.json").string()));
}

// --- Inertness and engine ground truth --------------------------------------

TEST(ObsEngine, TelemetryIsBitInertEvenUnderConcurrentScraping) {
  Rng R(7100);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  Rng SpecR(7101);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 10);
  RepairRequest Request = RepairRequest::points(Net, kAutoLayer, Spec);

  // Leg 1: telemetry off - the reference bits.
  EngineOptions Off;
  Off.NumWorkers = 2;
  RepairReport Reference;
  {
    RepairEngine Engine(Off);
    JobHandle H = Engine.submit(Request);
    Reference = H.report();
  }
  ASSERT_EQ(Reference.Status, RepairStatus::Success);

  // Leg 2: telemetry on.
  EngineOptions On = Off;
  On.Telemetry = std::make_shared<obs::Telemetry>();
  {
    RepairEngine Engine(On);
    JobHandle H = Engine.submit(Request);
    expectBitIdentical(H.report(), Reference);
  }
  EXPECT_EQ(On.Telemetry->JobsSubmitted->value(), 1.0);
  EXPECT_EQ(On.Telemetry->JobsCompleted->value(), 1.0);
  EXPECT_GT(On.Telemetry->Trace.recorded(), 0u);

  // Leg 3: telemetry on, with a scraper thread snapshotting and
  // rendering the registry the whole time the job runs.
  EngineOptions Scraped = Off;
  Scraped.Telemetry = std::make_shared<obs::Telemetry>();
  {
    RepairEngine Engine(Scraped);
    std::atomic<bool> Stop{false};
    std::thread Scraper([&] {
      while (!Stop.load(std::memory_order_relaxed)) {
        obs::MetricsSnapshot Snapshot = Scraped.Telemetry->Registry.snapshot();
        (void)Snapshot.renderPrometheus();
        (void)Scraped.Telemetry->Trace.events();
      }
    });
    JobHandle H = Engine.submit(Request);
    expectBitIdentical(H.report(), Reference);
    Stop.store(true);
    Scraper.join();
  }
}

TEST(ObsEngine, LifecycleCountersMatchGroundTruth) {
  Rng R(7200);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  auto Telemetry = std::make_shared<obs::Telemetry>();

  EngineOptions Options;
  Options.NumWorkers = 2;
  Options.Telemetry = Telemetry;
  constexpr int kJobs = 5;
  {
    RepairEngine Engine(Options);
    std::vector<JobHandle> Handles;
    for (int J = 0; J < kJobs; ++J) {
      Rng SpecR(7300 + J);
      Handles.push_back(Engine.submit(
          RepairRequest::points(Net, 2, makeFlipSpec(*Net, SpecR, 6))));
    }
    int Succeeded = 0;
    for (JobHandle &H : Handles)
      Succeeded += H.report().Status == RepairStatus::Success;

    EXPECT_EQ(Telemetry->JobsSubmitted->value(), double(kJobs));
    EXPECT_EQ(Telemetry->JobsCompleted->value(), double(kJobs));
    EXPECT_EQ(Telemetry->JobsSucceeded->value(), double(Succeeded));
    EXPECT_EQ(Telemetry->QueueWaitSeconds->snapshot().count(),
              std::uint64_t(kJobs));
    EXPECT_EQ(Telemetry->JobSeconds->snapshot().count(),
              std::uint64_t(kJobs));
    EXPECT_GE(Telemetry->SweepAttempts->value(), double(kJobs));

    // The same numbers through the snapshot path, by name.
    obs::MetricsSnapshot Snapshot = Telemetry->Registry.snapshot();
    EXPECT_EQ(Snapshot.value("prdnn_engine_jobs_submitted_total"),
              double(kJobs));
    EXPECT_EQ(Snapshot.value("prdnn_engine_jobs_completed_total"),
              double(kJobs));

    // Uniform reset through the engine: instruments and the
    // hook-mirrored cache counters zero together; live state survives.
    Engine.resetStats();
    EXPECT_EQ(Telemetry->JobsSubmitted->value(), 0.0);
    EXPECT_EQ(Telemetry->JobSeconds->snapshot().count(), 0u);
    EXPECT_EQ(Engine.cacheStats().Hits, 0u);
    EXPECT_EQ(Engine.cacheStats().Misses, 0u);
  }
}

// --- The RPC Metrics exchange -----------------------------------------------

TEST(ObsRpc, MetricsOverTheWireMatchEngineGroundTruth) {
  TempDir Dir("obs-rpc");
  Rng R(7400);
  Network Classifier = makeClassifier(R);

  serve::ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  Options.Engine.NumWorkers = 2;
  serve::RepairService Service(Options); // Telemetry defaults on
  ASSERT_NE(Service.telemetry(), nullptr);
  NetworkFingerprint Fp = Service.registry().publish(Classifier);

  rpc::RpcServer Server(Service, rpc::RpcServerOptions{});
  ASSERT_TRUE(Server.start());
  rpc::RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  rpc::RpcClient Client(ClientOptions);
  ASSERT_EQ(Client.connect(), rpc::RpcError::None);

  // A second connection scrapes the registry the whole time the jobs
  // run: the acceptance bar is that wire-served reports stay
  // bit-identical to serial cache-free twins *while being scraped*.
  std::atomic<bool> StopScraper{false};
  std::thread Scraper([&] {
    rpc::RpcClient Poller(ClientOptions);
    if (Poller.connect() != rpc::RpcError::None)
      return;
    while (!StopScraper.load(std::memory_order_relaxed)) {
      obs::MetricsSnapshot Snapshot;
      if (Poller.metrics(Snapshot) != rpc::RpcError::None)
        return;
      (void)Snapshot.renderPrometheus();
    }
  });

  EngineOptions TwinOptions;
  TwinOptions.EnableCache = false;
  RepairEngine TwinEngine(TwinOptions);

  constexpr int kJobs = 3;
  for (int J = 0; J < kJobs; ++J) {
    Rng SpecR(7500 + J);
    PointSpec Spec = makeFlipSpec(Classifier, SpecR, 6);

    RepairRequest Twin;
    Twin.Net = RepairRequest::borrow(Classifier);
    Twin.Spec = Spec;
    Twin.LayerIndex = 0;
    RepairReport TwinReport = TwinEngine.run(Twin);

    serve::ServeRequest Request;
    Request.Model = Fp;
    Request.Spec = std::move(Spec);
    Request.LayerIndex = 0;
    RepairReport Report;
    serve::ServeReject Reject = serve::ServeReject::Saturated;
    ASSERT_EQ(Client.repair(Request, Report, Reject), rpc::RpcError::None);
    ASSERT_EQ(Reject, serve::ServeReject::None);
    expectBitIdentical(Report, TwinReport);
  }
  StopScraper.store(true);
  Scraper.join();

  // One scrape, one page: engine, serve, admission, registry, and rpc
  // tiers all present, and the job counters agree with ground truth.
  obs::MetricsSnapshot Snapshot;
  ASSERT_EQ(Client.metrics(Snapshot), rpc::RpcError::None);
  EXPECT_EQ(Snapshot.value("prdnn_engine_jobs_submitted_total"),
            double(kJobs));
  EXPECT_EQ(Snapshot.value("prdnn_engine_jobs_completed_total"),
            double(kJobs));
  EXPECT_EQ(Snapshot.value("prdnn_serve_accepted_total"), double(kJobs));
  EXPECT_EQ(Snapshot.value("prdnn_serve_rejected_total"), 0.0);
  EXPECT_EQ(Snapshot.value("prdnn_admission_admitted_total"), double(kJobs));
  EXPECT_EQ(Snapshot.value("prdnn_admission_inflight"), 0.0);
  EXPECT_GE(Snapshot.value("prdnn_registry_publishes_total"), 1.0);
  EXPECT_GE(Snapshot.value("prdnn_rpc_connections_accepted_total"), 1.0);
  EXPECT_GT(Snapshot.value("prdnn_rpc_frames_received_total"), 0.0);
  EXPECT_GT(Snapshot.value("prdnn_rpc_bytes_received_total"), 0.0);
  const obs::MetricSample *JobSeconds =
      Snapshot.find("prdnn_engine_job_seconds");
  ASSERT_NE(JobSeconds, nullptr);
  EXPECT_EQ(JobSeconds->Hist.count(), std::uint64_t(kJobs));

  // The wire snapshot renders like a local one.
  std::string Text = Snapshot.renderPrometheus();
  EXPECT_NE(Text.find("prdnn_engine_jobs_submitted_total 3"),
            std::string::npos);

  // Uniform reset over every tier at once, scraped back over the wire:
  // monotonic counters zero, the trace ring survives (reset() is the
  // registry path; Telemetry::reset() also clears the ring).
  Service.resetStats();
  obs::MetricsSnapshot AfterReset;
  ASSERT_EQ(Client.metrics(AfterReset), rpc::RpcError::None);
  EXPECT_EQ(AfterReset.value("prdnn_engine_jobs_submitted_total"), 0.0);
  EXPECT_EQ(AfterReset.value("prdnn_serve_accepted_total"), 0.0);
  EXPECT_EQ(AfterReset.value("prdnn_admission_admitted_total"), 0.0);
  // The scrape carrying this snapshot is itself a received frame,
  // counted before the handler snapshots the registry.
  EXPECT_EQ(AfterReset.value("prdnn_rpc_frames_received_total"), 1.0);
  EXPECT_EQ(AfterReset.find("prdnn_engine_job_seconds")->Hist.count(), 0u);

  Client.close();
  Server.stop();
}

TEST(ObsRpc, TelemetrylessServiceAnswersEmptySnapshot) {
  TempDir Dir("obs-rpc-off");
  serve::ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  Options.Telemetry = false;
  serve::RepairService Service(Options);
  ASSERT_EQ(Service.telemetry(), nullptr);

  rpc::RpcServer Server(Service, rpc::RpcServerOptions{});
  ASSERT_TRUE(Server.start());
  rpc::RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  rpc::RpcClient Client(ClientOptions);
  ASSERT_EQ(Client.connect(), rpc::RpcError::None);

  // Scraping stays uniform across the fleet: no telemetry is an empty
  // page, not an error, and the connection keeps serving.
  obs::MetricsSnapshot Snapshot;
  ASSERT_EQ(Client.metrics(Snapshot), rpc::RpcError::None);
  EXPECT_TRUE(Snapshot.Samples.empty());
  serve::ServiceStats Stats;
  EXPECT_EQ(Client.status(Stats), rpc::RpcError::None);
  Server.stop();
}

} // namespace
