//===- tests/smooth_repair_test.cpp - repair with non-PWL activations ----------===//
//
// §5: "Our Provable Pointwise Repair algorithm makes no restrictions on
// the activation functions used by N." These tests exercise point
// repair of Tanh and Sigmoid networks, where the DDNN linearizes the
// smooth activations around the activation channel's values
// (Definition 4.2, Figure 6(b)); the repair is exact *for the DDNN*.
//
//===----------------------------------------------------------------------===//

#include "core/PointRepair.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

enum class SmoothKind { Tanh, Sigmoid, Mixed };

Network makeSmoothNetwork(Rng &R, SmoothKind Kind) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 8, 4, 0.8), randomVector(R, 8, 0.2)));
  if (Kind == SmoothKind::Sigmoid)
    Net.addLayer(std::make_unique<SigmoidLayer>(8));
  else
    Net.addLayer(std::make_unique<TanhLayer>(8));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 6, 8, 0.8), randomVector(R, 6, 0.2)));
  if (Kind == SmoothKind::Mixed)
    Net.addLayer(std::make_unique<SigmoidLayer>(6));
  else
    Net.addLayer(std::make_unique<TanhLayer>(6));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 3, 6, 0.8), randomVector(R, 3, 0.2)));
  return Net;
}

struct SmoothParams {
  uint64_t Seed;
  SmoothKind Kind;
  int LayerChoice; // index into parameterizedLayerIndices()
};

class SmoothRepair : public ::testing::TestWithParam<SmoothParams> {};

TEST_P(SmoothRepair, DdnnSatisfiesSpecExactly) {
  SmoothParams Params = GetParam();
  Rng R(Params.Seed);
  Network Net = makeSmoothNetwork(R, Params.Kind);
  int LayerIdx = Net.parameterizedLayerIndices()[Params.LayerChoice];

  // Demand shifted outputs on a couple of points.
  PointSpec Spec;
  for (int I = 0; I < 3; ++I) {
    Vector X = randomVector(R, 4);
    Vector Y = Net.evaluate(X);
    Vector Lo(3), Hi(3);
    for (int O = 0; O < 3; ++O) {
      double Shift = 0.3 * R.normal();
      Lo[O] = Y[O] + Shift - 0.05;
      Hi[O] = Y[O] + Shift + 0.05;
    }
    Spec.push_back({std::move(X), boxConstraint(Lo, Hi), std::nullopt});
  }

  RepairResult Result = repairPoints(Net, LayerIdx, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  // The DDNN (with linearized smooth activations) satisfies the spec
  // exactly - that is the §5 guarantee. The stats carry the re-verified
  // violation measured on the DDNN itself.
  EXPECT_LE(Result.Stats.VerifiedViolation, 1e-6);
  for (const SpecPoint &P : Spec)
    EXPECT_LE(P.Constraint.violation(Result.Repaired->evaluate(P.X)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmoothRepair,
    ::testing::Values(SmoothParams{81, SmoothKind::Tanh, 0},
                      SmoothParams{82, SmoothKind::Tanh, 1},
                      SmoothParams{83, SmoothKind::Tanh, 2},
                      SmoothParams{84, SmoothKind::Sigmoid, 0},
                      SmoothParams{85, SmoothKind::Sigmoid, 2},
                      SmoothParams{86, SmoothKind::Mixed, 1},
                      SmoothParams{87, SmoothKind::Mixed, 2}));

TEST(SmoothRepair, FinalLinearLayerAlsoFixesTheCoupledNetwork) {
  // When the repaired layer is the *final* layer, no activation sits
  // downstream, so the DDNN repair transfers verbatim to the plain
  // network even with smooth activations ("if the final layer of the
  // DNN is linear ... repairing just the output layer is actually an
  // LP", §1).
  Rng R(88);
  Network Net = makeSmoothNetwork(R, SmoothKind::Tanh);
  int Last = Net.parameterizedLayerIndices().back();

  PointSpec Spec;
  Vector X = randomVector(R, 4);
  Vector Y = Net.evaluate(X);
  Spec.push_back({X,
                  boxConstraint(Vector{Y[0] + 0.5, Y[1], Y[2]},
                                Vector{Y[0] + 0.6, Y[1], Y[2]}),
                  std::nullopt});
  RepairOptions Options;
  Options.RowMargin = 0.0;
  RepairResult Result = repairPoints(Net, Last, Spec, Options);
  ASSERT_EQ(Result.Status, RepairStatus::Success);

  Network Coupled = Net;
  cast<LinearLayer>(Coupled.layer(Last)).addToParams(Result.Delta);
  EXPECT_LE(Spec[0].Constraint.violation(Coupled.evaluate(X)), 1e-7);
}

TEST(SmoothRepair, EarlierLayerRepairIsDdnnOnly) {
  // For non-final layers of a smooth network, the repaired function is
  // the DDNN; the coupled network only satisfies the spec
  // approximately (first-order). This documents the intended semantics.
  Rng R(89);
  Network Net = makeSmoothNetwork(R, SmoothKind::Tanh);
  int First = Net.parameterizedLayerIndices().front();

  PointSpec Spec;
  Vector X = randomVector(R, 4);
  Vector Y = Net.evaluate(X);
  Spec.push_back({X,
                  boxConstraint(Vector{Y[0] + 0.2, Y[1] - 1.0, Y[2] - 1.0},
                                Vector{Y[0] + 0.3, Y[1] + 1.0, Y[2] + 1.0}),
                  std::nullopt});
  RepairResult Result = repairPoints(Net, First, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  // DDNN: exact.
  EXPECT_LE(Spec[0].Constraint.violation(Result.Repaired->evaluate(X)),
            1e-6);
}

} // namespace
