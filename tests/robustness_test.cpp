//===- tests/robustness_test.cpp - failure injection and option coverage -------===//
//
// Exercises the less-happy paths: solver budget exhaustion, delta box
// binding, constraint-generation edge configurations, and degenerate
// specifications.
//
//===----------------------------------------------------------------------===//

#include "core/PointRepair.h"
#include "core/PolytopeRepair.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

Network makeReluNet(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 10, 4, 0.8), randomVector(R, 10, 0.2)));
  Net.addLayer(std::make_unique<ReLULayer>(10));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 3, 10, 0.8), randomVector(R, 3, 0.2)));
  return Net;
}

TEST(Robustness, IterationLimitSurfacesAsSolverFailure) {
  Rng R(501);
  Network Net = makeReluNet(R);
  PointSpec Spec;
  for (int I = 0; I < 6; ++I)
    Spec.push_back({randomVector(R, 4),
                    classificationConstraint(3, R.uniformInt(0, 2), 1e-3),
                    std::nullopt});
  RepairOptions Options;
  Options.Lp.MaxIterations = 1; // starve the solver
  RepairResult Result = repairPoints(Net, 2, Spec, Options);
  EXPECT_EQ(Result.Status, RepairStatus::SolverFailure);
  EXPECT_FALSE(Result.Repaired.has_value());
}

TEST(Robustness, TightDeltaBoundMakesRepairInfeasible) {
  Rng R(502);
  Network Net = makeReluNet(R);
  Vector X = randomVector(R, 4);
  Vector Y = Net.evaluate(X);
  // Demand a huge output shift under a tiny per-parameter box.
  PointSpec Spec;
  Spec.push_back({X,
                  boxConstraint(Vector{Y[0] + 100.0, Y[1], Y[2]},
                                Vector{Y[0] + 101.0, Y[1], Y[2]}),
                  std::nullopt});
  // RowMargin must be zero: the spec pins outputs 1 and 2 exactly, and
  // any positive margin would empty those equality rows.
  RepairOptions Tight;
  Tight.DeltaBound = 1e-3;
  Tight.RowMargin = 0.0;
  EXPECT_EQ(repairPoints(Net, 2, Spec, Tight).Status,
            RepairStatus::Infeasible);
  // The same spec is feasible with a generous box.
  RepairOptions Loose;
  Loose.DeltaBound = 1e6;
  Loose.RowMargin = 0.0;
  EXPECT_EQ(repairPoints(Net, 2, Spec, Loose).Status,
            RepairStatus::Success);
}

TEST(Robustness, ZeroCgRoundsFallsBackToFullSolve) {
  Rng R(503);
  Network Net = makeReluNet(R);
  PointSpec Spec;
  for (int I = 0; I < 5; ++I)
    Spec.push_back({randomVector(R, 4),
                    classificationConstraint(3, R.uniformInt(0, 2), 1e-3),
                    std::nullopt});
  RepairOptions Options;
  Options.MaxCgRounds = 0; // generation exhausted immediately
  RepairResult Result = repairPoints(Net, 2, Spec, Options);
  EXPECT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_LE(Result.Stats.VerifiedViolation, 1e-6);
}

TEST(Robustness, TinyCgBatchStillConverges) {
  Rng R(504);
  Network Net = makeReluNet(R);
  PointSpec Spec;
  for (int I = 0; I < 8; ++I)
    Spec.push_back({randomVector(R, 4),
                    classificationConstraint(3, R.uniformInt(0, 2), 1e-3),
                    std::nullopt});
  RepairOptions Options;
  Options.CgBatch = 1;
  Options.MaxCgRounds = 200;
  RepairResult A = repairPoints(Net, 2, Spec, Options);
  RepairOptions Reference;
  Reference.UseConstraintGeneration = false;
  RepairResult B = repairPoints(Net, 2, Spec, Reference);
  ASSERT_EQ(A.Status, RepairStatus::Success);
  ASSERT_EQ(B.Status, RepairStatus::Success);
  EXPECT_NEAR(A.DeltaL1, B.DeltaL1, 1e-5 * (1.0 + B.DeltaL1));
}

TEST(Robustness, RowMarginTightensTheRepair) {
  // A larger margin produces a repair at least as large (the feasible
  // set shrinks), and strictly separates the winning class.
  Rng R(505);
  Network Net = makeReluNet(R);
  Vector X = randomVector(R, 4);
  int Target = (Net.classify(X) + 1) % 3;
  auto Run = [&](double Margin) {
    PointSpec Spec;
    Spec.push_back({X, classificationConstraint(3, Target, Margin),
                    std::nullopt});
    RepairOptions Options;
    Options.RowMargin = 0.0;
    return repairPoints(Net, 2, Spec, Options);
  };
  RepairResult Small = Run(1e-6);
  RepairResult Large = Run(0.5);
  ASSERT_EQ(Small.Status, RepairStatus::Success);
  ASSERT_EQ(Large.Status, RepairStatus::Success);
  EXPECT_GE(Large.DeltaL1, Small.DeltaL1 - 1e-9);
  Vector Y = Large.Repaired->evaluate(X);
  for (int O = 0; O < 3; ++O) {
    if (O != Target) {
      EXPECT_GE(Y[Target] - Y[O], 0.5 - 1e-6);
    }
  }
}

TEST(Robustness, DuplicateSpecPointsAreHarmless) {
  Rng R(506);
  Network Net = makeReluNet(R);
  Vector X = randomVector(R, 4);
  PointSpec Spec;
  for (int I = 0; I < 4; ++I)
    Spec.push_back({X, classificationConstraint(3, 1, 1e-3), std::nullopt});
  RepairResult Result = repairPoints(Net, 2, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_EQ(Result.Repaired->classify(X), 1);
}

TEST(Robustness, DegenerateSegmentPolytope) {
  // A zero-length segment is a single point; polytope repair handles it
  // as one region with two coincident key points.
  Rng R(507);
  Network Net = makeReluNet(R);
  Vector X = randomVector(R, 4);
  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{SegmentPolytope{X, X},
                              classificationConstraint(3, 0, 1e-3)});
  RepairResult Result = repairPolytopes(Net, 2, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_EQ(Result.Repaired->classify(X), 0);
}

TEST(Robustness, LpIterationBudgetRespected) {
  // Even pathological budgets terminate and report honestly.
  lp::LinearProgram P;
  Rng R(508);
  for (int J = 0; J < 20; ++J)
    P.addVariable(-1.0, 1.0, R.normal());
  for (int I = 0; I < 40; ++I) {
    std::vector<int> Index;
    std::vector<double> Value;
    for (int J = 0; J < 20; ++J) {
      Index.push_back(J);
      Value.push_back(R.normal());
    }
    P.addRowLe(std::move(Index), std::move(Value), R.uniform(1.0, 5.0));
  }
  lp::SimplexOptions Options;
  Options.MaxIterations = 3;
  lp::LpSolution S = lp::solveLp(P, Options);
  EXPECT_TRUE(S.Status == lp::SolveStatus::IterationLimit ||
              S.Status == lp::SolveStatus::Optimal);
  EXPECT_LE(S.Iterations, 3 + 1);
}

} // namespace
