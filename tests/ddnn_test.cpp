//===- tests/ddnn_test.cpp - Decoupled DNN tests -----------------------------===//
//
// Executable versions of the paper's §4 theorems:
//  - Theorem 4.4: DecoupledNetwork::fromNetwork(N) == N as functions.
//  - Theorem 4.5: DDNN output is affine in a value layer's parameters.
//  - Theorem 4.6: value-channel edits do not move the linear regions.
//
//===----------------------------------------------------------------------===//

#include "core/DecoupledNetwork.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "nn/Serialization.h"
#include "support/Casting.h"
#include "support/Rng.h"
#include "syrenn/LineTransform.h"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

enum class NetFlavor { Relu, Mixed, Smooth, Conv };

Network makeNetwork(Rng &R, NetFlavor Flavor) {
  Network Net;
  switch (Flavor) {
  case NetFlavor::Relu: {
    int Sizes[] = {4, 6, 5, 3};
    for (int I = 0; I + 1 < 4; ++I) {
      Net.addLayer(std::make_unique<FullyConnectedLayer>(
          randomMatrix(R, Sizes[I + 1], Sizes[I], 0.8),
          randomVector(R, Sizes[I + 1], 0.3)));
      if (I + 2 < 4)
        Net.addLayer(std::make_unique<ReLULayer>(Sizes[I + 1]));
    }
    break;
  }
  case NetFlavor::Mixed: {
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 6, 4, 0.8), randomVector(R, 6, 0.3)));
    Net.addLayer(std::make_unique<LeakyReLULayer>(6, 0.1));
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 5, 6, 0.8), randomVector(R, 5, 0.3)));
    Net.addLayer(std::make_unique<HardTanhLayer>(5));
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 3, 5, 0.8), randomVector(R, 3, 0.3)));
    break;
  }
  case NetFlavor::Smooth: {
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 6, 4, 0.8), randomVector(R, 6, 0.3)));
    Net.addLayer(std::make_unique<TanhLayer>(6));
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 5, 6, 0.8), randomVector(R, 5, 0.3)));
    Net.addLayer(std::make_unique<SigmoidLayer>(5));
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 3, 5, 0.8), randomVector(R, 3, 0.3)));
    break;
  }
  case NetFlavor::Conv: {
    std::vector<double> Kernel(2 * 1 * 3 * 3);
    for (double &V : Kernel)
      V = 0.5 * R.normal();
    Net.addLayer(std::make_unique<Conv2DLayer>(
        1, 4, 4, 2, 3, 3, 1, 1, Kernel, std::vector<double>{0.1, -0.1}));
    Net.addLayer(std::make_unique<ReLULayer>(32));
    Net.addLayer(std::make_unique<MaxPool2DLayer>(2, 4, 4, 2, 2, 2));
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 3, 8, 0.5), randomVector(R, 3, 0.2)));
    break;
  }
  }
  return Net;
}

class TheoremSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, NetFlavor>> {};

TEST_P(TheoremSweep, Theorem44FromNetworkIsIdentity) {
  auto [Seed, Flavor] = GetParam();
  Rng R(Seed);
  Network Net = makeNetwork(R, Flavor);
  DecoupledNetwork Ddnn = DecoupledNetwork::fromNetwork(Net);
  for (int Trial = 0; Trial < 30; ++Trial) {
    Vector X = randomVector(R, Net.inputSize(), 1.5);
    EXPECT_LT(Ddnn.evaluate(X).maxAbsDiff(Net.evaluate(X)), 1e-10);
  }
}

TEST_P(TheoremSweep, Theorem45OutputAffineInValueLayer) {
  auto [Seed, Flavor] = GetParam();
  Rng R(Seed + 1000);
  Network Net = makeNetwork(R, Flavor);
  Vector X = randomVector(R, Net.inputSize());

  for (int LayerIdx : Net.parameterizedLayerIndices()) {
    auto MakePerturbed = [&](const std::vector<double> &Delta) {
      DecoupledNetwork D = DecoupledNetwork::fromNetwork(Net);
      cast<LinearLayer>(D.valueChannel().layer(LayerIdx)).addToParams(Delta);
      return D.evaluate(X);
    };
    int P = cast<LinearLayer>(Net.layer(LayerIdx)).numParams();
    std::vector<double> D1(static_cast<size_t>(P)), D2(D1), Mix(D1);
    for (int I = 0; I < P; ++I) {
      D1[I] = R.normal();
      D2[I] = R.normal();
      Mix[I] = 0.7 * D1[I] - 1.3 * D2[I];
    }
    Vector Base = DecoupledNetwork::fromNetwork(Net).evaluate(X);
    Vector Y1 = MakePerturbed(D1);
    Vector Y2 = MakePerturbed(D2);
    Vector YMix = MakePerturbed(Mix);
    // Affinity: f(a D1 + b D2) - f(0) == a (f(D1)-f(0)) + b (f(D2)-f(0)).
    Vector Expected = Base;
    Expected += (Y1 - Base) * 0.7;
    Expected += (Y2 - Base) * (-1.3);
    EXPECT_LT(YMix.maxAbsDiff(Expected), 1e-7) << "layer " << LayerIdx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(NetFlavor::Relu, NetFlavor::Mixed,
                                         NetFlavor::Smooth,
                                         NetFlavor::Conv)));

TEST(Ddnn, Theorem46ValueEditsPreserveLinearRegions) {
  Rng R(77);
  Network Net = makeNetwork(R, NetFlavor::Relu);
  Vector A = randomVector(R, 4, 2.0);
  Vector B = randomVector(R, 4, 2.0);
  LinePartition Before = lineRegions(Net, A, B);

  // Edit the value channel massively; the activation channel (which
  // decides the regions) is untouched, so the DDNN's regions are those
  // of the activation channel: identical.
  DecoupledNetwork Ddnn = DecoupledNetwork::fromNetwork(Net);
  for (int LayerIdx : Net.parameterizedLayerIndices()) {
    auto &L = cast<LinearLayer>(Ddnn.valueChannel().layer(LayerIdx));
    std::vector<double> Delta(static_cast<size_t>(L.numParams()));
    for (double &D : Delta)
      D = 3.0 * R.normal();
    L.addToParams(Delta);
  }
  LinePartition After = lineRegions(Ddnn.activationChannel(), A, B);
  ASSERT_EQ(Before.Ts.size(), After.Ts.size());
  for (size_t I = 0; I < Before.Ts.size(); ++I)
    EXPECT_NEAR(Before.Ts[I], After.Ts[I], 1e-12);

  // And the DDNN is affine within each original region. Note that a
  // DDNN with edited value weights is in general *discontinuous* at
  // region boundaries (the value pre-activations need not vanish where
  // the activation pre-activations do), so the endpoints must be
  // evaluated under the region's pinned pattern - exactly the
  // Appendix B treatment of key points.
  for (int Piece = 0; Piece < Before.numPieces(); ++Piece) {
    double T0 = Before.Ts[static_cast<size_t>(Piece)];
    double T1 = Before.Ts[static_cast<size_t>(Piece) + 1];
    NetworkPattern Pattern = computePattern(
        Ddnn.activationChannel(), Before.pointAt(Before.midpoint(Piece)));
    Vector Y0 = Ddnn.evaluateWithPattern(Before.pointAt(T0), Pattern);
    Vector Y1 = Ddnn.evaluateWithPattern(Before.pointAt(T1), Pattern);
    Vector YMid = Ddnn.evaluate(Before.pointAt(0.5 * (T0 + T1)));
    Vector Avg = (Y0 + Y1) * 0.5;
    EXPECT_LT(YMid.maxAbsDiff(Avg), 1e-7) << "piece " << Piece;
    // Interior plain evaluation agrees with pinned evaluation.
    Vector YMidPinned =
        Ddnn.evaluateWithPattern(Before.pointAt(0.5 * (T0 + T1)), Pattern);
    EXPECT_LT(YMid.maxAbsDiff(YMidPinned), 1e-9) << "piece " << Piece;
  }
}

TEST(Ddnn, MismatchedChannelsRejected) {
  // Channels must agree layerwise; readDecoupled rejects mismatches.
  Rng R(5);
  Network A = makeNetwork(R, NetFlavor::Relu);
  Network B = makeNetwork(R, NetFlavor::Smooth);
  std::ostringstream Os;
  Os << "prdnn-ddnn v1\n";
  writeNetwork(A, Os);
  writeNetwork(B, Os);
  std::istringstream Is(Os.str());
  EXPECT_FALSE(readDecoupled(Is).has_value());
}

TEST(Ddnn, SerializationRoundTrip) {
  Rng R(6);
  Network Net = makeNetwork(R, NetFlavor::Mixed);
  DecoupledNetwork Ddnn = DecoupledNetwork::fromNetwork(Net);
  auto &L = cast<LinearLayer>(
      Ddnn.valueChannel().layer(Net.parameterizedLayerIndices()[0]));
  std::vector<double> Delta(static_cast<size_t>(L.numParams()), 0.25);
  L.addToParams(Delta);

  std::ostringstream Os;
  writeDecoupled(Ddnn, Os);
  std::istringstream Is(Os.str());
  std::optional<DecoupledNetwork> Loaded = readDecoupled(Is);
  ASSERT_TRUE(Loaded.has_value());
  for (int Trial = 0; Trial < 10; ++Trial) {
    Vector X = randomVector(R, Net.inputSize());
    EXPECT_LT(Loaded->evaluate(X).maxAbsDiff(Ddnn.evaluate(X)), 1e-12);
  }
}

TEST(Ddnn, AccuracyCountsDdnnSemantics) {
  Rng R(7);
  Network Net = makeNetwork(R, NetFlavor::Relu);
  DecoupledNetwork Ddnn = DecoupledNetwork::fromNetwork(Net);
  std::vector<Vector> Inputs;
  std::vector<int> Labels;
  for (int I = 0; I < 20; ++I) {
    Inputs.push_back(randomVector(R, 4));
    Labels.push_back(Net.classify(Inputs.back()));
  }
  EXPECT_DOUBLE_EQ(Ddnn.accuracy(Inputs, Labels), 1.0);
}

} // namespace
