//===- tests/integration_test.cpp - end-to-end pipeline tests -----------------===//
//
// Small-scale versions of the three evaluation tasks, exercising the
// full stack: data generation -> training -> spec construction ->
// LinRegions -> Jacobians -> LP -> repaired DDNN -> verification.
//
//===----------------------------------------------------------------------===//

#include "core/PointRepair.h"
#include "core/PolytopeRepair.h"
#include "data/Acas.h"
#include "data/Corruptions.h"
#include "data/Digits.h"
#include "data/ShapeWorld.h"
#include "train/FineTune.h"

#include <gtest/gtest.h>

#include <fstream>

namespace {

using namespace prdnn;
using namespace prdnn::data;

TEST(Integration, Task1StylePointRepair) {
  Rng R(9001);
  Network Net = trainShapeClassifier(900, 5, R);
  Rng EvalR(9002);
  Dataset Validation = makeShapeWorld(180, EvalR);
  Rng AdvR(9003);
  Dataset Adversarials = makeNaturalAdversarials(Net, 18, AdvR);

  PointSpec Spec;
  for (int I = 0; I < Adversarials.size(); ++I)
    Spec.push_back({Adversarials.Inputs[I],
                    classificationConstraint(kShapeClasses,
                                             Adversarials.Labels[I], 1e-4),
                    std::nullopt});
  // Anchor a few correctly-classified points, as the paper's repair
  // sets do ("included a number of non-buggy points").
  int Anchors = 0;
  for (int I = 0; I < Validation.size() && Anchors < 40; ++I) {
    if (Net.classify(Validation.Inputs[I]) != Validation.Labels[I])
      continue;
    Spec.push_back({Validation.Inputs[I],
                    classificationConstraint(kShapeClasses,
                                             Validation.Labels[I], 1e-4),
                    std::nullopt});
    ++Anchors;
  }

  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPoints(Net, OutputLayer, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  // P1 efficacy: all adversarials fixed.
  EXPECT_DOUBLE_EQ(
      Result.Repaired->accuracy(Adversarials.Inputs, Adversarials.Labels),
      1.0);
  // P3 locality: drawdown bounded (was ~0% -> stays high).
  EXPECT_GE(Result.Repaired->accuracy(Validation.Inputs, Validation.Labels),
            0.6);
}

TEST(Integration, Task2StyleLineRepair) {
  Rng R(9101);
  Network Net = trainDigitClassifier(16, 1500, 10, R);

  PolytopeSpec Spec;
  Rng LineR(9102);
  while (Spec.size() < 6) {
    int Digit = static_cast<int>(Spec.size()) % kDigitClasses;
    Vector Clean = makeDigitImage(Digit, LineR);
    if (Net.classify(Clean) != Digit)
      continue;
    Vector Fog = fogCorrupt(Clean, kDigitImage, kDigitImage, 0.7, LineR);
    Spec.push_back(SpecPolytope{
        SegmentPolytope{std::move(Clean), std::move(Fog)},
        classificationConstraint(kDigitClasses, Digit, 1e-4)});
  }

  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPolytopes(Net, OutputLayer, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_GT(Result.Stats.KeyPoints, 12);
  EXPECT_GT(Result.Stats.LinearRegions, 6);

  // The whole line is provably repaired: dense sampling finds nothing.
  for (const SpecPolytope &P : Spec) {
    const auto &Segment = std::get<SegmentPolytope>(P.Shape);
    for (int S = 0; S <= 40; ++S) {
      Vector X = Segment.B;
      X -= Segment.A;
      X *= S / 40.0;
      X += Segment.A;
      EXPECT_LE(P.Constraint.violation(Result.Repaired->evaluate(X)), 1e-7);
    }
  }
}

TEST(Integration, Task3StyleSliceRepair) {
  Rng R(9201);
  Network Net = trainAcasNetwork(12, 3000, 10, R);

  // Find one violating slice (or accept a clean network).
  Rng SliceR(9202);
  std::vector<Vector> Bad;
  for (int Trial = 0; Trial < 1500 && Bad.empty(); ++Trial) {
    std::vector<Vector> Slice = randomSafeSlice(SliceR);
    for (int A = 0; A <= 10 && Bad.empty(); ++A)
      for (int B = 0; B <= 10; ++B) {
        Vector X = Slice[0] * ((1 - A / 10.0) * (1 - B / 10.0));
        X += Slice[1] * ((A / 10.0) * (1 - B / 10.0));
        X += Slice[2] * ((A / 10.0) * (B / 10.0));
        X += Slice[3] * ((1 - A / 10.0) * (B / 10.0));
        if (!acasSafeAdvisory(Net.classify(X))) {
          Bad = Slice;
          break;
        }
      }
  }
  if (Bad.empty())
    GTEST_SKIP() << "trained network satisfies the property already";

  PolytopeSpec Raw;
  Raw.push_back(SpecPolytope{
      PlanePolytope{Bad},
      classificationConstraint(kAcasAdvisories, AcasCoc)});
  PointSpec Points = keyPointSpec(Net, Raw);
  for (SpecPoint &P : Points) {
    Vector Y = evaluateWithPattern(Net, P.X, *P.Pattern);
    int Target = Y[AcasCoc] >= Y[AcasWeakLeft] ? AcasCoc : AcasWeakLeft;
    P.Constraint = classificationConstraint(kAcasAdvisories, Target, 1e-5);
  }

  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPoints(Net, OutputLayer, Points);
  ASSERT_EQ(Result.Status, RepairStatus::Success);

  // Dense check of the property across the repaired slice.
  for (int A = 0; A <= 25; ++A)
    for (int B = 0; B <= 25; ++B) {
      Vector X = Bad[0] * ((1 - A / 25.0) * (1 - B / 25.0));
      X += Bad[1] * ((A / 25.0) * (1 - B / 25.0));
      X += Bad[2] * ((A / 25.0) * (B / 25.0));
      X += Bad[3] * ((1 - A / 25.0) * (B / 25.0));
      EXPECT_TRUE(acasSafeAdvisory(Result.Repaired->classify(X)));
    }
}

TEST(Integration, SaveLoadRepairedNetwork) {
  Rng R(9301);
  Network Net = trainDigitClassifier(12, 800, 6, R);
  PointSpec Spec;
  Rng PointR(9302);
  for (int I = 0; I < 4; ++I) {
    Vector Image = makeDigitImage(I, PointR);
    Spec.push_back({std::move(Image),
                    classificationConstraint(kDigitClasses, I, 1e-4),
                    std::nullopt});
  }
  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPoints(Net, OutputLayer, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);

  std::string Path = "/tmp/prdnn_integration_ddnn.txt";
  {
    std::ofstream Os(Path);
    writeDecoupled(*Result.Repaired, Os);
  }
  std::ifstream Is(Path);
  std::optional<DecoupledNetwork> Loaded = readDecoupled(Is);
  ASSERT_TRUE(Loaded.has_value());
  for (const SpecPoint &P : Spec)
    EXPECT_LE(P.Constraint.violation(Loaded->evaluate(P.X)), 1e-7);
}

} // namespace
