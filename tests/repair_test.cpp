//===- tests/repair_test.cpp - point/polytope repair tests --------------------===//
//
// Reproduces the paper's §3 worked examples exactly (including the
// l1-minimal deltas), checks Theorem 5.4/6.4 level guarantees
// (satisfaction, minimality vs. alternatives, infeasibility detection),
// and sweeps randomized repair problems with and without constraint
// generation.
//
//===----------------------------------------------------------------------===//

#include "core/PointRepair.h"
#include "core/PolytopeRepair.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

Network makeFigure3Network() {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0}, {1.0}, {1.0}}), Vector{0.0, 0.0, -1.0}));
  Net.addLayer(std::make_unique<ReLULayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0, -1.0, 1.0}}), Vector{0.0}));
  return Net;
}

/// Mask matching the paper's drawn network: the three x->h weights and
/// h3's bias are repairable; h1/h2 biases do not exist in Figure 3 and
/// are frozen.
std::vector<bool> figure3Mask() {
  // Param layout for fc 3x1: W(3) then bias(3).
  return {true, true, true, false, false, true};
}

Network makeRandomReluClassifier(Rng &R, int InputSize, int Hidden,
                                 int Classes) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Hidden, InputSize, 0.9),
      randomVector(R, Hidden, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Hidden, Hidden, 0.9), randomVector(R, Hidden, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Classes, Hidden, 0.9),
      randomVector(R, Classes, 0.3)));
  return Net;
}

// --- Paper §3.1 worked example ----------------------------------------------

TEST(PointRepair, PaperSection31ExactDeltas) {
  // Spec (Equation 2): -1 <= N'(0.5) <= -0.8 and -0.2 <= N'(1.5) <= 0.
  // Paper's l1-minimal repair of the first layer: Delta2 = 0.6,
  // Delta3 = 1.1333..., all others 0 (total 26/15).
  Network Net = makeFigure3Network();
  PointSpec Spec;
  Spec.push_back({Vector{0.5},
                  boxConstraint(Vector{-1.0}, Vector{-0.8}),
                  std::nullopt});
  Spec.push_back({Vector{1.5},
                  boxConstraint(Vector{-0.2}, Vector{0.0}),
                  std::nullopt});

  RepairOptions Options;
  Options.Objective = lp::Norm::L1;
  Options.ParamMask = figure3Mask();
  Options.RowMargin = 0.0;
  RepairResult Result = repairPoints(Net, 0, Spec, Options);

  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_NEAR(Result.Delta[0], 0.0, 1e-6);        // x->h1
  EXPECT_NEAR(Result.Delta[1], 0.6, 1e-6);        // x->h2
  EXPECT_NEAR(Result.Delta[2], 17.0 / 15.0, 1e-6); // x->h3 = 1.1333
  EXPECT_NEAR(Result.Delta[5], 0.0, 1e-6);        // h3 bias
  EXPECT_NEAR(Result.DeltaL1, 0.6 + 17.0 / 15.0, 1e-6);

  // Repaired values match Figure 5(c): N5(0.5) = -0.8, N5(1.5) = -0.2.
  const DecoupledNetwork &N5 = *Result.Repaired;
  EXPECT_NEAR(N5.evaluate(Vector{0.5})[0], -0.8, 1e-7);
  EXPECT_NEAR(N5.evaluate(Vector{1.5})[0], -0.2, 1e-7);

  // Locality: the linear regions are unchanged (Theorem 4.6), so the
  // repaired DDNN still maps x = -0.5 like N1 does outside the repair.
  EXPECT_NEAR(N5.evaluate(Vector{-0.5})[0], -0.5, 1e-7);
}

TEST(PolytopeRepair, PaperSection32SingleWeightChange) {
  // Spec (Equation 3): for all x in [0.5, 1.5], -0.8 <= N'(x) <= -0.4.
  // Paper: key points {0.5, 1, 1, 1.5}; l1-minimal repair is the single
  // change Delta2 = -0.2.
  Network Net = makeFigure3Network();
  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{
      SegmentPolytope{Vector{0.5}, Vector{1.5}},
      boxConstraint(Vector{-0.8}, Vector{-0.4})});

  RepairOptions Options;
  Options.Objective = lp::Norm::L1;
  Options.ParamMask = figure3Mask();
  Options.RowMargin = 0.0;
  RepairResult Result = repairPolytopes(Net, 0, Spec, Options);

  ASSERT_EQ(Result.Status, RepairStatus::Success);
  // Two linear regions overlap [0.5, 1.5] -> 4 key points (1 appears
  // twice, once per region; Appendix B).
  EXPECT_EQ(Result.Stats.KeyPoints, 4);
  EXPECT_EQ(Result.Stats.LinearRegions, 2);
  EXPECT_NEAR(Result.Delta[1], -0.2, 1e-6);
  EXPECT_NEAR(Result.DeltaL1, 0.2, 1e-6);

  // Figure 5(d): N6(0.5) = -0.4 ... N6(1.5) = -0.5; verify the spec on
  // dense samples of the segment (the whole point of Theorem 6.4).
  const DecoupledNetwork &N6 = *Result.Repaired;
  for (int I = 0; I <= 100; ++I) {
    double X = 0.5 + I / 100.0;
    double Y = N6.evaluate(Vector{X})[0];
    EXPECT_LE(Y, -0.4 + 1e-7) << "x = " << X;
    EXPECT_GE(Y, -0.8 - 1e-7) << "x = " << X;
  }
}

// --- Guarantees ---------------------------------------------------------------

TEST(PointRepair, InfeasibleSpecDetected) {
  // Contradictory constraints on the same point: no repair of any layer
  // can satisfy them.
  Network Net = makeFigure3Network();
  PointSpec Spec;
  Spec.push_back({Vector{0.5}, boxConstraint(Vector{1.0}, Vector{2.0}),
                  std::nullopt});
  Spec.push_back({Vector{0.5}, boxConstraint(Vector{-2.0}, Vector{-1.0}),
                  std::nullopt});
  for (int LayerIdx : Net.parameterizedLayerIndices()) {
    RepairResult Result = repairPoints(Net, LayerIdx, Spec);
    EXPECT_EQ(Result.Status, RepairStatus::Infeasible);
  }
}

TEST(PointRepair, AlreadySatisfiedSpecYieldsZeroDelta) {
  Network Net = makeFigure3Network();
  PointSpec Spec;
  Spec.push_back({Vector{0.5}, boxConstraint(Vector{-1.0}, Vector{0.0}),
                  std::nullopt});
  RepairResult Result = repairPoints(Net, 0, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_NEAR(Result.DeltaL1, 0.0, 1e-9);
}

TEST(PointRepair, MinimalityAgainstHandConstructedAlternative) {
  // Force N(0.5) from -0.5 to exactly -1.0 by repairing the output
  // layer. Output layer params: (w1, w2, w3, b); at x=0.5 only h2=0.5
  // is active, so the constraint is -0.5 + 0.5 dw2 + db = -1. The
  // l1-minimal solution is db = -0.5 (cost 0.5) rather than dw2 = -1.
  Network Net = makeFigure3Network();
  PointSpec Spec;
  Spec.push_back({Vector{0.5}, boxConstraint(Vector{-1.0}, Vector{-1.0}),
                  std::nullopt});
  RepairOptions Options;
  Options.RowMargin = 0.0;
  RepairResult Result = repairPoints(Net, 2, Spec, Options);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_NEAR(Result.DeltaL1, 0.5, 1e-6);
  EXPECT_NEAR(Result.Delta[3], -0.5, 1e-6); // the bias
}

TEST(PointRepair, LInfObjectiveSpreadsTheChange) {
  // Same constraint under l-infinity: spreading over w2 and b is now
  // optimal with max-magnitude 1/3 (dw2 * 0.5 + db = -0.5 with
  // |dw2|,|db| <= t minimized at t = 1/3).
  Network Net = makeFigure3Network();
  PointSpec Spec;
  Spec.push_back({Vector{0.5}, boxConstraint(Vector{-1.0}, Vector{-1.0}),
                  std::nullopt});
  RepairOptions Options;
  Options.Objective = lp::Norm::LInf;
  Options.RowMargin = 0.0;
  RepairResult Result = repairPoints(Net, 2, Spec, Options);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_NEAR(Result.DeltaLInf, 1.0 / 3.0, 1e-6);
}

// --- Randomized sweeps ---------------------------------------------------------

struct RepairSweepParams {
  uint64_t Seed;
  int Points;
  bool UseCg;
};

class RepairSweep : public ::testing::TestWithParam<RepairSweepParams> {};

TEST_P(RepairSweep, RepairedNetworkSatisfiesClassificationSpec) {
  RepairSweepParams Params = GetParam();
  Rng R(Params.Seed);
  const int Classes = 4;
  Network Net = makeRandomReluClassifier(R, 5, 12, Classes);

  // Ask for a (random) target class on each point - the typical "buggy
  // points" workload. Repairs the output layer, where a fix always
  // exists for generic inputs.
  PointSpec Spec;
  std::vector<Vector> Xs;
  for (int I = 0; I < Params.Points; ++I) {
    Vector X = randomVector(R, 5, 1.5);
    int Target = R.uniformInt(0, Classes - 1);
    Spec.push_back({X, classificationConstraint(Classes, Target, 1e-3),
                    std::nullopt});
    Xs.push_back(std::move(X));
  }

  RepairOptions Options;
  Options.UseConstraintGeneration = Params.UseCg;
  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPoints(Net, OutputLayer, Spec, Options);
  ASSERT_EQ(Result.Status, RepairStatus::Success);

  // Every repaired point is now classified as requested (P1 efficacy =
  // 100%), measured on the network, not the LP.
  for (size_t I = 0; I < Spec.size(); ++I) {
    Vector Y = Result.Repaired->evaluate(Spec[I].X);
    EXPECT_LE(Spec[I].Constraint.violation(Y), 1e-6) << "point " << I;
  }
  EXPECT_LE(Result.Stats.VerifiedViolation, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepairSweep,
    ::testing::Values(RepairSweepParams{41, 1, true},
                      RepairSweepParams{42, 3, true},
                      RepairSweepParams{43, 6, true},
                      RepairSweepParams{44, 10, true},
                      RepairSweepParams{45, 6, false},
                      RepairSweepParams{46, 10, false},
                      RepairSweepParams{47, 16, true},
                      RepairSweepParams{48, 16, false}));

TEST(PointRepair, ConstraintGenerationMatchesFullSolve) {
  // CG is an exact method: the optimal objective must match the full LP.
  Rng R(51);
  Network Net = makeRandomReluClassifier(R, 4, 10, 3);
  PointSpec Spec;
  for (int I = 0; I < 8; ++I)
    Spec.push_back({randomVector(R, 4, 1.5),
                    classificationConstraint(3, R.uniformInt(0, 2), 1e-3),
                    std::nullopt});
  int OutputLayer = Net.parameterizedLayerIndices().back();

  RepairOptions WithCg;
  WithCg.UseConstraintGeneration = true;
  RepairOptions Without;
  Without.UseConstraintGeneration = false;
  RepairResult A = repairPoints(Net, OutputLayer, Spec, WithCg);
  RepairResult B = repairPoints(Net, OutputLayer, Spec, Without);
  ASSERT_EQ(A.Status, RepairStatus::Success);
  ASSERT_EQ(B.Status, RepairStatus::Success);
  EXPECT_NEAR(A.DeltaL1, B.DeltaL1, 1e-5 * (1.0 + B.DeltaL1));
}

TEST(PolytopeRepair, SegmentSpecHoldsOnDenseSamples) {
  Rng R(61);
  Network Net = makeRandomReluClassifier(R, 4, 10, 3);
  // Pick a segment and demand its current majority class everywhere
  // along it (with a positive margin) - a "repair the corridor" spec.
  Vector A = randomVector(R, 4);
  Vector B = randomVector(R, 4);
  int Target = Net.classify(A);

  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{SegmentPolytope{A, B},
                              classificationConstraint(3, Target, 1e-3)});
  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPolytopes(Net, OutputLayer, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  EXPECT_GT(Result.Stats.KeyPoints, 0);

  for (int I = 0; I <= 200; ++I) {
    double T = I / 200.0;
    Vector X = B;
    X -= A;
    X *= T;
    X += A;
    EXPECT_EQ(Result.Repaired->classify(X), Target) << "t = " << T;
  }
}

TEST(PolytopeRepair, PlaneSpecHoldsOnDenseSamples) {
  Rng R(62);
  Network Net = makeRandomReluClassifier(R, 4, 8, 3);
  Vector Origin = randomVector(R, 4);
  Vector E1 = randomVector(R, 4, 0.8);
  Vector E2 = randomVector(R, 4, 0.8);
  auto At = [&](double S, double T) {
    Vector V = Origin;
    V += E1 * S;
    V += E2 * T;
    return V;
  };
  int Target = Net.classify(At(0.5, 0.5));

  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{
      PlanePolytope{{At(0, 0), At(1, 0), At(1, 1), At(0, 1)}},
      classificationConstraint(3, Target, 1e-3)});
  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairResult Result = repairPolytopes(Net, OutputLayer, Spec);
  ASSERT_EQ(Result.Status, RepairStatus::Success);

  Rng Sampler(63);
  for (int I = 0; I < 300; ++I) {
    Vector X = At(Sampler.uniform(), Sampler.uniform());
    EXPECT_EQ(Result.Repaired->classify(X), Target);
  }
}

TEST(PointRepair, FrozenParametersStayFrozen) {
  Network Net = makeFigure3Network();
  PointSpec Spec;
  Spec.push_back({Vector{0.5}, boxConstraint(Vector{-1.0}, Vector{-0.9}),
                  std::nullopt});
  RepairOptions Options;
  // Only the h2 bias (index 4) may move.
  Options.ParamMask = std::vector<bool>{false, false, false, false, true,
                                        false};
  RepairResult Result = repairPoints(Net, 0, Spec, Options);
  ASSERT_EQ(Result.Status, RepairStatus::Success);
  for (int P = 0; P < 6; ++P) {
    if (P != 4) {
      EXPECT_EQ(Result.Delta[static_cast<size_t>(P)], 0.0) << "param " << P;
    }
  }
  EXPECT_GT(std::fabs(Result.Delta[4]), 1e-9);
}

// --- Batched engine determinism ----------------------------------------------
//
// The batched pipeline promises thread-count-invariant results: the
// repaired Delta must match bit-for-bit between a 1-thread and an
// N-thread run, with and without constraint generation.

TEST(PointRepair, DeltaIdenticalAcrossThreadCounts) {
  Rng R(71);
  Network Net = makeRandomReluClassifier(R, 5, 14, 3);
  PointSpec Spec;
  for (int I = 0; I < 40; ++I) {
    Vector X = randomVector(R, 5);
    Spec.push_back({X, classificationConstraint(3, I % 3, 1e-3),
                    I % 4 == 0 ? std::optional<NetworkPattern>(
                                     computePattern(Net, X))
                               : std::nullopt});
  }
  int OutputLayer = Net.parameterizedLayerIndices().back();
  for (bool UseCg : {false, true}) {
    RepairOptions Options;
    Options.UseConstraintGeneration = UseCg;

    setGlobalThreadCount(1);
    RepairResult Single = repairPoints(Net, OutputLayer, Spec, Options);
    setGlobalThreadCount(4);
    RepairResult Multi = repairPoints(Net, OutputLayer, Spec, Options);
    setGlobalThreadCount(1);

    ASSERT_EQ(Single.Status, Multi.Status) << "cg " << UseCg;
    ASSERT_EQ(Single.Delta.size(), Multi.Delta.size());
    for (size_t P = 0; P < Single.Delta.size(); ++P)
      EXPECT_EQ(Single.Delta[P], Multi.Delta[P])
          << "param " << P << " cg " << UseCg;
    EXPECT_EQ(Single.Stats.SpecRows, Multi.Stats.SpecRows);
  }
}

TEST(PointRepair, BatchedAndSeedJacobianPathsMatchBitForBit) {
  Rng R(73);
  Network Net = makeRandomReluClassifier(R, 5, 12, 3);
  PointSpec Spec;
  for (int I = 0; I < 25; ++I) {
    Vector X = randomVector(R, 5);
    Spec.push_back({X, classificationConstraint(3, Net.classify(X), 1e-3),
                    I % 5 == 0 ? std::optional<NetworkPattern>(
                                     computePattern(Net, X))
                               : std::nullopt});
  }
  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairOptions Batched, Seed;
  Seed.BatchedJacobians = false;
  setGlobalThreadCount(4);
  RepairResult A = repairPoints(Net, OutputLayer, Spec, Batched);
  RepairResult B = repairPoints(Net, OutputLayer, Spec, Seed);
  setGlobalThreadCount(1);
  ASSERT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.Delta.size(), B.Delta.size());
  for (size_t P = 0; P < A.Delta.size(); ++P)
    EXPECT_EQ(A.Delta[P], B.Delta[P]) << "param " << P;
}

TEST(PolytopeRepair, KeyPointsIdenticalAcrossThreadCounts) {
  Rng R(72);
  Network Net = makeRandomReluClassifier(R, 4, 10, 3);
  PolytopeSpec Spec;
  for (int I = 0; I < 6; ++I) {
    Vector A = randomVector(R, 4), B = randomVector(R, 4);
    Spec.push_back(SpecPolytope{
        SegmentPolytope{A, B},
        classificationConstraint(3, Net.classify(A), 1e-3)});
  }

  setGlobalThreadCount(1);
  PointSpec Single = keyPointSpec(Net, Spec);
  setGlobalThreadCount(4);
  PointSpec Multi = keyPointSpec(Net, Spec);
  setGlobalThreadCount(1);

  ASSERT_EQ(Single.size(), Multi.size());
  for (size_t P = 0; P < Single.size(); ++P) {
    EXPECT_EQ(Single[P].X.maxAbsDiff(Multi[P].X), 0.0) << "point " << P;
    ASSERT_TRUE(Single[P].Pattern.has_value());
    ASSERT_TRUE(Multi[P].Pattern.has_value());
    EXPECT_TRUE(*Single[P].Pattern == *Multi[P].Pattern) << "point " << P;
  }
}

TEST(PointRepair, StatsTimingPopulatedOnAllPaths) {
  // OtherSeconds/TotalSeconds must be stamped on early exits too.
  Network Net = makeFigure3Network();
  PointSpec Impossible;
  // y <= -1 and y >= 1 simultaneously: infeasible for any Delta.
  Impossible.push_back({Vector{0.5},
                        boxConstraint(Vector{1.0}, Vector{1.5}),
                        std::nullopt});
  Impossible.push_back({Vector{0.5},
                        boxConstraint(Vector{-1.5}, Vector{-1.0}),
                        std::nullopt});
  RepairResult Result = repairPoints(Net, 0, Impossible);
  EXPECT_EQ(Result.Status, RepairStatus::Infeasible);
  EXPECT_GT(Result.Stats.TotalSeconds, 0.0);
  EXPECT_GE(Result.Stats.OtherSeconds, 0.0);
  EXPECT_GE(Result.Stats.TotalSeconds,
            Result.Stats.JacobianSeconds + Result.Stats.LpSeconds +
                Result.Stats.OtherSeconds - 1e-9);
}

} // namespace
