//===- tests/rpc_test.cpp - network RPC subsystem tests ----------------------===//
//
// Covers the rpc/ subsystem end to end: bit-exact payload round-trips
// for every wire message; a real client/server exchange over TCP
// localhost whose decoded reports are bit-for-bit identical to serial,
// cache-free in-process twins; typed degradation of every failure path
// - malformed frames (truncated, bad magic, wrong version, corrupted
// digest, oversized declarations) answered with typed errors and the
// connection recoverable exactly when the stream stayed in sync; Await
// deadlines expiring typed with the job unharmed; saturation and
// connection-limit rejects carrying the same typed vocabulary as
// admission; a client killed mid-request leaking no admission ticket;
// and toString() total over every wire-visible enum, so a byte from a
// foreign peer can never print garbage. Runs under the CI
// ThreadSanitizer job next to serve_test and engine_test.
//
//===----------------------------------------------------------------------===//

#include "rpc/RpcClient.h"
#include "rpc/RpcServer.h"

#include "api/RepairEngine.h"
#include "cache/Fingerprint.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "persist/Codec.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <netinet/in.h>
#include <set>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace fs = std::filesystem;

namespace {

using namespace prdnn;
using namespace prdnn::rpc;
using persist::ByteReader;
using persist::ByteWriter;
using persist::CodecError;

/// Unique directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path Path;

  explicit TempDir(const std::string &Tag) {
    static std::atomic<int> Counter{0};
    auto Stamp = std::chrono::steady_clock::now().time_since_epoch().count();
    Path = fs::temp_directory_path() /
           ("prdnn-" + Tag + "-" + std::to_string(Stamp) + "-" +
            std::to_string(Counter.fetch_add(1)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 6 -> 16 -> 16 -> 4 ReLU classifier; parameterized layers 0, 2, 4.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 6, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 16, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 16, 0.9), randomVector(R, 4, 0.3)));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

void expectBitIdentical(const RepairResult &A, const RepairResult &B) {
  ASSERT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.Delta.size(), B.Delta.size());
  for (size_t I = 0; I < A.Delta.size(); ++I)
    EXPECT_EQ(A.Delta[I], B.Delta[I]) << "Delta[" << I << "]";
  EXPECT_EQ(A.DeltaL1, B.DeltaL1);
  EXPECT_EQ(A.DeltaLInf, B.DeltaLInf);
}

/// A raw TCP connection for crafting hostile byte streams the typed
/// client would never send.
struct RawConn {
  int Fd = -1;

  ~RawConn() { close(); }

  bool connectTo(int Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<std::uint16_t>(Port));
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      close();
      return false;
    }
    return true;
  }

  bool sendBytes(const std::vector<std::uint8_t> &Bytes) {
    std::size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Sent += static_cast<std::size_t>(N);
    }
    return true;
  }

  RpcError recvReply(std::uint8_t &Kind, std::vector<std::uint8_t> &Payload) {
    WireLimits Limits;
    return recvFrame(Fd, Kind, Payload, Limits);
  }

  void shutdownWrite() { ::shutdown(Fd, SHUT_WR); }

  void close() {
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
  }
};

/// Decodes an ErrorReply payload; BadKind-tags failures so EXPECT_EQ
/// prints something sensible.
RpcError decodeErrorReply(const std::vector<std::uint8_t> &Payload) {
  ByteReader R(Payload.data(), Payload.size());
  std::uint8_t Code = 0;
  std::string Detail;
  if (!R.u8(Code) || !R.str(Detail))
    return RpcError::BadKind;
  return static_cast<RpcError>(Code);
}

serve::ServeRequest makeRichRequest(const NetworkFingerprint &Fp,
                                    const Network &Net, Rng &R) {
  serve::ServeRequest Request;
  Request.Model = Fp;
  Request.Spec = makeFlipSpec(Net, R, 5);
  Request.LayerIndex = kAutoLayer;
  Request.SweepLayers = {0, 2, 4};
  Request.Class = RepairRequest::Priority::High;
  Request.Options.DeltaBound = 17.5;
  Request.Options.UseConstraintGeneration = true;
  Request.Options.CgBatch = 7;
  Request.Options.ParamMask = std::vector<bool>{true, false, true};
  Request.Options.Lp.MaxIterations = 1234;
  Request.Options.Lp.ScaleRows = false;
  return Request;
}

// --- Payload serializers ----------------------------------------------------

TEST(RpcWire, ServeRequestRoundTripsByteExact) {
  Rng R(8201);
  Network Net = makeClassifier(R);
  NetworkFingerprint Fp = fingerprintNetwork(Net);
  Rng SpecR(8202);
  serve::ServeRequest Request = makeRichRequest(Fp, Net, SpecR);
  // A pattern on one point exercises the optional branch.
  NetworkPattern Pattern;
  Pattern.Patterns.push_back({1, 0, 1, 1});
  std::get<PointSpec>(Request.Spec)[0].Pattern = Pattern;

  ByteWriter W;
  writeServeRequest(W, Request);
  ByteReader Reader(W.buffer().data(), W.buffer().size());
  serve::ServeRequest Back;
  ASSERT_TRUE(readServeRequest(Reader, Back)) << toString(Reader.error());
  EXPECT_EQ(Reader.remaining(), 0u);

  EXPECT_EQ(Back.Model, Fp);
  EXPECT_EQ(Back.LayerIndex, kAutoLayer);
  EXPECT_EQ(Back.SweepLayers, Request.SweepLayers);
  EXPECT_EQ(Back.Class, RepairRequest::Priority::High);
  EXPECT_EQ(Back.Options.DeltaBound, 17.5);
  EXPECT_EQ(Back.Options.CgBatch, 7);
  ASSERT_TRUE(Back.Options.ParamMask.has_value());
  EXPECT_EQ(*Back.Options.ParamMask, *Request.Options.ParamMask);
  EXPECT_EQ(Back.Options.Lp.MaxIterations, 1234);
  EXPECT_FALSE(Back.Options.Lp.ScaleRows);

  // Re-encoding the decoded request reproduces the bytes exactly: the
  // encoding is canonical, so fingerprints of requests are stable.
  ByteWriter Again;
  writeServeRequest(Again, Back);
  EXPECT_EQ(W.buffer(), Again.buffer());

  // Polytope specs take the other branch.
  serve::ServeRequest Poly;
  Poly.Model = Fp;
  PolytopeSpec PSpec;
  PSpec.push_back(
      {SegmentPolytope{randomVector(SpecR, Net.inputSize()),
                       randomVector(SpecR, Net.inputSize())},
       classificationConstraint(Net.outputSize(), 1, 1e-3)});
  Poly.Spec = std::move(PSpec);
  Poly.LayerIndex = 2;
  ByteWriter PW;
  writeServeRequest(PW, Poly);
  ByteReader PReader(PW.buffer().data(), PW.buffer().size());
  serve::ServeRequest PolyBack;
  ASSERT_TRUE(readServeRequest(PReader, PolyBack));
  ByteWriter PAgain;
  writeServeRequest(PAgain, PolyBack);
  EXPECT_EQ(PW.buffer(), PAgain.buffer());
}

TEST(RpcWire, RepairReportRoundTripsBitExact) {
  Rng R(8203);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  Rng SpecR(8204);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  EngineOptions Options;
  Options.EnableCache = false;
  RepairEngine Engine(Options);
  RepairRequest Request = RepairRequest::points(Net, kAutoLayer, Spec);
  RepairReport Report = Engine.run(Request);
  ASSERT_EQ(Report.Status, RepairStatus::Success);
  ASSERT_TRUE(Report.Result.Repaired.has_value());
  ASSERT_FALSE(Report.Sweep.empty());

  ByteWriter W;
  writeRepairReport(W, Report);
  ByteReader Reader(W.buffer().data(), W.buffer().size());
  RepairReport Back;
  ASSERT_TRUE(readRepairReport(Reader, Back)) << toString(Reader.error());
  EXPECT_EQ(Reader.remaining(), 0u);

  // Bit identity of everything the determinism contract names.
  EXPECT_EQ(Back.Status, Report.Status);
  EXPECT_EQ(Back.RepairedLayer, Report.RepairedLayer);
  expectBitIdentical(Back.Result, Report.Result);
  ASSERT_EQ(Back.Sweep.size(), Report.Sweep.size());
  for (size_t I = 0; I < Report.Sweep.size(); ++I) {
    EXPECT_EQ(Back.Sweep[I].LayerIndex, Report.Sweep[I].LayerIndex);
    EXPECT_EQ(Back.Sweep[I].Status, Report.Sweep[I].Status);
    EXPECT_EQ(Back.Sweep[I].DeltaL1, Report.Sweep[I].DeltaL1);
  }
  // The repaired network decodes to bit-identical evaluations.
  ASSERT_TRUE(Back.Result.Repaired.has_value());
  Rng ProbeR(8205);
  Vector X = randomVector(ProbeR, Net->inputSize());
  Vector Want = Report.Result.Repaired->evaluate(X);
  Vector Got = Back.Result.Repaired->evaluate(X);
  for (int O = 0; O < Want.size(); ++O)
    EXPECT_EQ(Got[O], Want[O]);

  // Canonical encoding: decode-then-encode is the identity on bytes.
  ByteWriter Again;
  writeRepairReport(Again, Back);
  EXPECT_EQ(W.buffer(), Again.buffer());
}

TEST(RpcWire, ProgressAndServiceStatsRoundTripByteExact) {
  ProgressSnapshot Snapshot;
  Snapshot.Phase = RepairPhase::Lp;
  Snapshot.ItemsDone = 41;
  Snapshot.ItemsTotal = 0;
  Snapshot.SweepLayer = 2;
  Snapshot.SweepDone = 1;
  Snapshot.SweepTotal = 3;
  Snapshot.CancelRequested = true;
  Snapshot.CacheHits = 7;
  Snapshot.CacheMisses = 9;
  Snapshot.StoreHits = 3;
  ByteWriter W;
  writeProgressSnapshot(W, Snapshot);
  ByteReader Reader(W.buffer().data(), W.buffer().size());
  ProgressSnapshot Back;
  ASSERT_TRUE(readProgressSnapshot(Reader, Back));
  EXPECT_EQ(Back.Phase, RepairPhase::Lp);
  EXPECT_EQ(Back.ItemsDone, 41);
  EXPECT_TRUE(Back.CancelRequested);
  ByteWriter Again;
  writeProgressSnapshot(Again, Back);
  EXPECT_EQ(W.buffer(), Again.buffer());

  serve::ServiceStats Stats;
  Stats.Accepted = 12;
  Stats.Rejected = 3;
  Stats.RejectsByReason[1] = 2;
  Stats.RejectsByReason[3] = 1;
  Stats.Registry.Publishes = 4;
  Stats.Registry.DiskLoads = 2;
  Stats.Admission.Depth = 5;
  Stats.Admission.Admitted = 12;
  Stats.Admission.OldestWaitSeconds = 0.25;
  Stats.Engine.Depth = 4;
  Stats.Engine.Running = 1;
  Stats.Cache.Hits = 100;
  Stats.Cache.Store.Writes = 6;
  ByteWriter SW;
  writeServiceStats(SW, Stats);
  ByteReader SReader(SW.buffer().data(), SW.buffer().size());
  serve::ServiceStats SBack;
  ASSERT_TRUE(readServiceStats(SReader, SBack));
  EXPECT_EQ(SBack.Accepted, 12u);
  EXPECT_EQ(SBack.RejectsByReason[3], 1u);
  EXPECT_EQ(SBack.Registry.Publishes, 4u);
  EXPECT_EQ(SBack.Admission.OldestWaitSeconds, 0.25);
  EXPECT_EQ(SBack.Cache.Store.Writes, 6u);
  ByteWriter SAgain;
  writeServiceStats(SAgain, SBack);
  EXPECT_EQ(SW.buffer(), SAgain.buffer());
}

TEST(RpcWire, MalformedPayloadsFailTypedNeverCrash) {
  Rng R(8206);
  Network Net = makeClassifier(R);
  Rng SpecR(8207);
  serve::ServeRequest Request =
      makeRichRequest(fingerprintNetwork(Net), Net, SpecR);
  ByteWriter W;
  writeServeRequest(W, Request);
  const std::vector<std::uint8_t> &Good = W.buffer();

  // Every strict prefix is a typed failure (Truncated or Corrupt).
  for (std::size_t Cut : {std::size_t(0), std::size_t(1), Good.size() / 4,
                          Good.size() / 2, Good.size() - 1}) {
    ByteReader Reader(Good.data(), Cut);
    serve::ServeRequest Back;
    EXPECT_FALSE(readServeRequest(Reader, Back)) << "prefix " << Cut;
    EXPECT_NE(Reader.error(), CodecError::None);
  }

  // An impossible count fails Corrupt before allocating: set the spec
  // point count (right after the 16-byte fingerprint + 1 tag byte) to
  // 2^60.
  std::vector<std::uint8_t> Huge = Good;
  for (int I = 0; I < 8; ++I)
    Huge[17 + I] = I == 7 ? 0x10 : 0x00;
  ByteReader HugeReader(Huge.data(), Huge.size());
  serve::ServeRequest Back;
  EXPECT_FALSE(readServeRequest(HugeReader, Back));
  EXPECT_EQ(HugeReader.error(), CodecError::Corrupt);
}

// --- toString totality ------------------------------------------------------

/// Every named value prints a distinct non-"unknown" string; every
/// out-of-range byte prints "unknown" - a foreign peer's enum byte can
/// never crash or print garbage.
template <typename Enum, typename Fn>
void expectToStringTotal(Fn &&ToString, std::uint8_t NamedCount) {
  std::set<std::string> Seen;
  for (std::uint8_t V = 0; V < NamedCount; ++V) {
    const char *S = ToString(static_cast<Enum>(V));
    ASSERT_NE(S, nullptr);
    EXPECT_STRNE(S, "") << "value " << int(V);
    EXPECT_STRNE(S, "unknown") << "value " << int(V);
    EXPECT_TRUE(Seen.insert(S).second) << "duplicate name: " << S;
  }
  for (int V : {int(NamedCount), 0x7f, 0xee, 0xff})
    EXPECT_STREQ(ToString(static_cast<Enum>(V)), "unknown") << "value " << V;
}

TEST(RpcWire, ToStringIsTotalForEveryWireVisibleEnum) {
  expectToStringTotal<RpcError>([](RpcError E) { return toString(E); }, 10);
  expectToStringTotal<serve::ServeReject>(
      [](serve::ServeReject E) { return serve::toString(E); }, 6);
  expectToStringTotal<serve::RegistryError>(
      [](serve::RegistryError E) { return serve::toString(E); }, 5);
  expectToStringTotal<serve::AdmitReject>(
      [](serve::AdmitReject E) { return serve::toString(E); }, 3);
  expectToStringTotal<CodecError>(
      [](CodecError E) { return persist::toString(E); }, 6);
  expectToStringTotal<RepairStatus>(
      [](RepairStatus E) { return toString(E); }, 4);
  expectToStringTotal<RepairPhase>(
      [](RepairPhase E) { return toString(E); }, 6);
}

TEST(RpcWire, CodecErrorsMapOntoWireVocabulary) {
  EXPECT_EQ(fromCodecError(CodecError::None), RpcError::None);
  EXPECT_EQ(fromCodecError(CodecError::Truncated), RpcError::Truncated);
  EXPECT_EQ(fromCodecError(CodecError::BadMagic), RpcError::BadMagic);
  EXPECT_EQ(fromCodecError(CodecError::BadVersion), RpcError::BadVersion);
  // A foreign-endian network peer is just not speaking this protocol.
  EXPECT_EQ(fromCodecError(CodecError::ForeignEndian), RpcError::Corrupt);
  EXPECT_EQ(fromCodecError(CodecError::Corrupt), RpcError::Corrupt);
}

// --- Client/server over TCP localhost ---------------------------------------

struct ServiceFixture {
  TempDir Dir;
  Network Classifier;
  serve::RepairService Service;
  NetworkFingerprint Fp;

  explicit ServiceFixture(const std::string &Tag, int Workers = 2,
                          int MaxInFlight = 8)
      : Dir(Tag), Classifier([] {
          Rng R(8300);
          return makeClassifier(R);
        }()),
        Service([&] {
          serve::ServiceOptions Options;
          Options.StoreDirectory = Dir.str();
          Options.Engine.NumWorkers = Workers;
          Options.Admission.MaxInFlight = MaxInFlight;
          return Options;
        }()) {
    Fp = Service.registry().publish(Classifier);
  }
};

TEST(RpcEndToEnd, ReportsBitIdenticalToSerialCacheFreeTwins) {
  ServiceFixture Fx("rpc-e2e");
  RpcServer Server(Fx.Service, RpcServerOptions{});
  ASSERT_TRUE(Server.start());
  ASSERT_GT(Server.port(), 0);

  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient Client(ClientOptions);
  ASSERT_EQ(Client.connect(), RpcError::None);

  EngineOptions SerialOptions;
  SerialOptions.EnableCache = false;
  RepairEngine SerialEngine(SerialOptions);

  const int Layers[] = {0, 2, 4, kAutoLayer};
  for (int I = 0; I < 4; ++I) {
    Rng SpecR(9500 + I);
    PointSpec Spec = makeFlipSpec(Fx.Classifier, SpecR, 10);

    RepairRequest Twin;
    Twin.Net = RepairRequest::borrow(Fx.Classifier);
    Twin.Spec = Spec;
    Twin.LayerIndex = Layers[I];
    RepairReport TwinReport = SerialEngine.run(Twin);

    serve::ServeRequest Request;
    Request.Model = Fx.Fp;
    Request.Spec = std::move(Spec);
    Request.LayerIndex = Layers[I];

    RepairReport Report;
    serve::ServeReject Reject = serve::ServeReject::Saturated;
    ASSERT_EQ(Client.repair(Request, Report, Reject), RpcError::None);
    ASSERT_EQ(Reject, serve::ServeReject::None);

    EXPECT_EQ(Report.Status, TwinReport.Status);
    EXPECT_EQ(Report.RepairedLayer, TwinReport.RepairedLayer);
    expectBitIdentical(Report.Result, TwinReport.Result);
    EXPECT_EQ(Report.Sweep.size(), TwinReport.Sweep.size());
  }

  // The aggregated status travels too, and the ledger balances: four
  // accepted jobs, every admission ticket released.
  serve::ServiceStats Stats;
  ASSERT_EQ(Client.status(Stats), RpcError::None);
  EXPECT_EQ(Stats.Accepted, 4u);
  EXPECT_EQ(Stats.Rejected, 0u);
  EXPECT_EQ(Stats.Admission.Depth, 0);

  RpcClientStats ClientStats = Client.stats();
  EXPECT_GT(ClientStats.BytesSent, 0u);
  EXPECT_GT(ClientStats.BytesReceived, 0u);
  // The server's counters are only final once its connection threads
  // are joined: the thread adds to BytesSent *after* send() returns,
  // so a client that already read the reply can race a pre-stop read.
  Client.close();
  Server.stop();
  RpcServerStats ServerStats = Server.stats();
  EXPECT_EQ(ServerStats.BytesReceived, ClientStats.BytesSent);
  EXPECT_EQ(ServerStats.BytesSent, ClientStats.BytesReceived);
}

TEST(RpcEndToEnd, TypedServeRejectsTravelTheWire) {
  ServiceFixture Fx("rpc-rejects");
  RpcServer Server(Fx.Service, RpcServerOptions{});
  ASSERT_TRUE(Server.start());
  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient Client(ClientOptions);

  Rng SpecR(9600);
  serve::ServeRequest Unknown;
  Unknown.Model.Digest.Hi = 0xdead;
  Unknown.Model.Digest.Lo = 0xbeef;
  Unknown.Spec = makeFlipSpec(Fx.Classifier, SpecR, 4);
  Unknown.LayerIndex = 0;

  // submit() carries the typed reject; repair() fails fast on it.
  SubmitReply Reply;
  ASSERT_EQ(Client.connect(), RpcError::None);
  ASSERT_EQ(Client.submit(Unknown, Reply), RpcError::None);
  EXPECT_EQ(Reply.Reject, serve::ServeReject::UnknownModel);
  EXPECT_EQ(Reply.JobId, 0u);

  RepairReport Report;
  serve::ServeReject Reject = serve::ServeReject::None;
  ASSERT_EQ(Client.repair(Unknown, Report, Reject), RpcError::None);
  EXPECT_EQ(Reject, serve::ServeReject::UnknownModel);
  EXPECT_EQ(Client.stats().Retries, 0u) << "non-shed rejects never retry";
  Server.stop();
}

TEST(RpcEndToEnd, SaturationRejectsTypedAndDeadlineExpiryLeavesJobAlive) {
  ServiceFixture Fx("rpc-saturate", /*Workers=*/1, /*MaxInFlight=*/1);
  RpcServer Server(Fx.Service, RpcServerOptions{});
  ASSERT_TRUE(Server.start());
  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient Client(ClientOptions);
  ASSERT_EQ(Client.connect(), RpcError::None);

  auto Net = std::make_shared<Network>([&] {
    Rng R(8301);
    return makeClassifier(R);
  }());
  Rng SpecR(9700);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  // Park the single engine worker inside a blocker job (submitted
  // straight to the engine: it holds no admission ticket).
  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Fx.Service.engine().submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  // First wire submit takes the only admission slot and queues behind
  // the blocker.
  serve::ServeRequest Request;
  Request.Model = Fx.Fp;
  Request.Spec = Spec;
  Request.LayerIndex = 0;
  SubmitReply First;
  ASSERT_EQ(Client.submit(Request, First), RpcError::None);
  ASSERT_TRUE(First.accepted());

  // Second submit is shed with the same typed reason admission gives.
  SubmitReply Second;
  ASSERT_EQ(Client.submit(Request, Second), RpcError::None);
  EXPECT_EQ(Second.Reject, serve::ServeReject::Saturated);
  EXPECT_EQ(Second.JobId, 0u);

  // Progress polls see the queued job without blocking it.
  bool Found = false;
  ProgressSnapshot Snapshot;
  ASSERT_EQ(Client.progress(First.JobId, Found, Snapshot), RpcError::None);
  EXPECT_TRUE(Found);
  EXPECT_EQ(Snapshot.Phase, RepairPhase::Queued);

  // An Await deadline expires typed; the job survives, still held.
  RepairReport Report;
  ASSERT_EQ(Client.await(First.JobId, 60, Found, Report),
            RpcError::Timeout);
  EXPECT_EQ(Fx.Service.queueStats().Admission.Depth, 1);
  EXPECT_GE(Server.stats().AwaitTimeouts, 1u);

  // Release the worker; the same connection re-awaits the same job.
  Release.set_value();
  ASSERT_EQ(Blocker.report().Status, RepairStatus::Success);
  ASSERT_EQ(Client.await(First.JobId, 0, Found, Report), RpcError::None);
  ASSERT_TRUE(Found);
  EXPECT_EQ(Report.Status, RepairStatus::Success);

  // Ticket released through the completion hook: nothing leaked.
  EXPECT_EQ(Fx.Service.queueStats().Admission.Depth, 0);
  Server.stop();
}

TEST(RpcEndToEnd, CancelOverTheWireResolvesTyped) {
  ServiceFixture Fx("rpc-cancel", /*Workers=*/1);
  RpcServer Server(Fx.Service, RpcServerOptions{});
  ASSERT_TRUE(Server.start());
  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient Client(ClientOptions);
  ASSERT_EQ(Client.connect(), RpcError::None);

  auto Net = std::make_shared<Network>([&] {
    Rng R(8302);
    return makeClassifier(R);
  }());
  Rng SpecR(9800);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Fx.Service.engine().submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  serve::ServeRequest Request;
  Request.Model = Fx.Fp;
  Request.Spec = Spec;
  Request.LayerIndex = 0;
  SubmitReply Submitted;
  ASSERT_EQ(Client.submit(Request, Submitted), RpcError::None);
  ASSERT_TRUE(Submitted.accepted());

  bool Found = false;
  ASSERT_EQ(Client.cancel(Submitted.JobId, Found), RpcError::None);
  EXPECT_TRUE(Found);

  // Cancellation is cooperative: the flag is raised while the job is
  // queued, and it resolves as Cancelled (without running) once the
  // parked worker frees up to dequeue it.
  Release.set_value();
  (void)Blocker.report();

  // The cancelled report is still collectable, and typed.
  RepairReport Report;
  ASSERT_EQ(Client.await(Submitted.JobId, 0, Found, Report), RpcError::None);
  ASSERT_TRUE(Found);
  EXPECT_EQ(Report.Status, RepairStatus::Cancelled);

  // Unknown ids answer Found=false on every exchange, never an error.
  ASSERT_EQ(Client.cancel(99999, Found), RpcError::None);
  EXPECT_FALSE(Found);
  ASSERT_EQ(Client.await(99999, 50, Found, Report), RpcError::None);
  EXPECT_FALSE(Found);

  EXPECT_EQ(Fx.Service.queueStats().Admission.Depth, 0);
  Server.stop();
}

TEST(RpcEndToEnd, ConnectionBoundRejectsWithAdmissionVocabulary) {
  ServiceFixture Fx("rpc-connlimit");
  RpcServerOptions ServerOptions;
  ServerOptions.MaxConnections = 1;
  RpcServer Server(Fx.Service, ServerOptions);
  ASSERT_TRUE(Server.start());

  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient First(ClientOptions);
  ASSERT_EQ(First.connect(), RpcError::None);
  serve::ServiceStats Stats;
  ASSERT_EQ(First.status(Stats), RpcError::None);

  // The second connection is shed, typed, at the connection level.
  RpcClient Second(ClientOptions);
  ASSERT_EQ(Second.connect(), RpcError::None);
  EXPECT_EQ(Second.status(Stats), RpcError::Closed);
  EXPECT_EQ(Second.lastConnectionReject(), serve::ServeReject::Saturated);
  EXPECT_GE(Server.stats().ConnectionsRejected, 1u);

  // Capacity freed by the first client leaving is reusable (the
  // acceptor reaps on the following accept).
  First.close();
  RpcError Err = RpcError::Closed;
  for (int Try = 0; Try < 100 && Err != RpcError::None; ++Try) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    RpcClient Retry(ClientOptions);
    if (Retry.connect() != RpcError::None)
      continue;
    Err = Retry.status(Stats);
  }
  EXPECT_EQ(Err, RpcError::None);
  Server.stop();
}

TEST(RpcEndToEnd, MalformedFramesAreTypedAndConnectionsRecoverInSync) {
  ServiceFixture Fx("rpc-malformed");
  RpcServerOptions ServerOptions;
  ServerOptions.Limits.MaxFrameBytes = 1 << 16;
  RpcServer Server(Fx.Service, ServerOptions);
  ASSERT_TRUE(Server.start());

  const std::vector<std::uint8_t> StatusFrame =
      persist::frame(static_cast<std::uint8_t>(MessageKind::Status), {});

  auto ExpectErrorReply = [&](RawConn &Conn, RpcError Want) {
    std::uint8_t Kind = 0;
    std::vector<std::uint8_t> Payload;
    ASSERT_EQ(Conn.recvReply(Kind, Payload), RpcError::None);
    ASSERT_EQ(static_cast<MessageKind>(Kind), MessageKind::ErrorReply);
    EXPECT_EQ(decodeErrorReply(Payload), Want);
  };
  auto ExpectStatusWorks = [&](RawConn &Conn) {
    ASSERT_TRUE(Conn.sendBytes(StatusFrame));
    std::uint8_t Kind = 0;
    std::vector<std::uint8_t> Payload;
    ASSERT_EQ(Conn.recvReply(Kind, Payload), RpcError::None);
    ASSERT_EQ(static_cast<MessageKind>(Kind), MessageKind::StatusReply);
    ByteReader R(Payload.data(), Payload.size());
    serve::ServiceStats Stats;
    EXPECT_TRUE(readServiceStats(R, Stats));
  };
  auto ExpectClosed = [&](RawConn &Conn) {
    std::uint8_t Kind = 0;
    std::vector<std::uint8_t> Payload;
    RpcError Err = Conn.recvReply(Kind, Payload);
    EXPECT_TRUE(Err == RpcError::Closed || Err == RpcError::Truncated)
        << toString(Err);
  };

  // In-sync failures keep the connection: digest corruption...
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    std::vector<std::uint8_t> Corrupted = StatusFrame;
    Corrupted[persist::kFrameHeaderSize] ^= 0xff; // digest trailer bit
    ASSERT_TRUE(Conn.sendBytes(Corrupted));
    ExpectErrorReply(Conn, RpcError::Corrupt);
    ExpectStatusWorks(Conn); // same socket still serves
  }
  // ...an unknown kind byte...
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    ASSERT_TRUE(Conn.sendBytes(persist::frame(0x7f, {})));
    ExpectErrorReply(Conn, RpcError::BadKind);
    ExpectStatusWorks(Conn);
  }
  // ...and a digest-valid frame whose payload does not decode.
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    ASSERT_TRUE(Conn.sendBytes(persist::frame(
        static_cast<std::uint8_t>(MessageKind::Submit), {0x01, 0x02})));
    ExpectErrorReply(Conn, RpcError::Corrupt);
    ExpectStatusWorks(Conn);
  }

  // Desynchronizing failures answer typed, then close: bad magic...
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    std::vector<std::uint8_t> BadMagic = StatusFrame;
    BadMagic[0] = 'X';
    ASSERT_TRUE(Conn.sendBytes(BadMagic));
    ExpectErrorReply(Conn, RpcError::BadMagic);
    ExpectClosed(Conn);
  }
  // ...a version this build does not speak...
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    std::vector<std::uint8_t> BadVersion = StatusFrame;
    BadVersion[4] = 99;
    ASSERT_TRUE(Conn.sendBytes(BadVersion));
    ExpectErrorReply(Conn, RpcError::BadVersion);
    ExpectClosed(Conn);
  }
  // ...a declared payload over the negotiated bound (rejected before
  // any allocation)...
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    std::vector<std::uint8_t> Oversized = StatusFrame;
    std::uint64_t Declared = std::uint64_t(1) << 30;
    for (int I = 0; I < 8; ++I)
      Oversized[13 + I] = static_cast<std::uint8_t>(Declared >> (8 * I));
    ASSERT_TRUE(Conn.sendBytes(Oversized));
    ExpectErrorReply(Conn, RpcError::Oversized);
    ExpectClosed(Conn);
  }
  // ...and a frame cut off mid-stream.
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    std::vector<std::uint8_t> Partial(StatusFrame.begin(),
                                      StatusFrame.begin() + 25);
    ASSERT_TRUE(Conn.sendBytes(Partial));
    Conn.shutdownWrite();
    ExpectErrorReply(Conn, RpcError::Truncated);
    ExpectClosed(Conn);
  }

  // Through all of it: no crash, no wedge, no partially admitted job.
  EXPECT_TRUE(Server.running());
  EXPECT_GE(Server.stats().MalformedFrames, 7u);
  serve::ServiceStats Stats = Fx.Service.stats();
  EXPECT_EQ(Stats.Accepted, 0u);
  EXPECT_EQ(Stats.Admission.Depth, 0);
  {
    RawConn Conn;
    ASSERT_TRUE(Conn.connectTo(Server.port()));
    ExpectStatusWorks(Conn);
  }
  Server.stop();
}

TEST(RpcEndToEnd, ClientKilledMidRequestLeaksNoTicketAndServerSurvives) {
  ServiceFixture Fx("rpc-kill", /*Workers=*/1);
  RpcServer Server(Fx.Service, RpcServerOptions{});
  ASSERT_TRUE(Server.start());

  auto Net = std::make_shared<Network>([&] {
    Rng R(8303);
    return makeClassifier(R);
  }());
  Rng SpecR(9900);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  // Park the worker so the wire job is still unresolved when the
  // client dies.
  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Fx.Service.engine().submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  {
    RpcClientOptions ClientOptions;
    ClientOptions.Port = Server.port();
    RpcClient Doomed(ClientOptions);
    ASSERT_EQ(Doomed.connect(), RpcError::None);
    serve::ServeRequest Request;
    Request.Model = Fx.Fp;
    Request.Spec = Spec;
    Request.LayerIndex = 0;
    SubmitReply Submitted;
    ASSERT_EQ(Doomed.submit(Request, Submitted), RpcError::None);
    ASSERT_TRUE(Submitted.accepted());
    EXPECT_EQ(Fx.Service.queueStats().Admission.Depth, 1);
  } // ~RpcClient: the socket dies with the job in flight

  // The server orphans the connection's job (raising its cancel flag);
  // once the worker frees up it resolves as Cancelled, the completion
  // hook releases the ticket, and nothing is leaked.
  Release.set_value();
  ASSERT_EQ(Blocker.report().Status, RepairStatus::Success);
  bool Drained = false;
  for (int Try = 0; Try < 500 && !Drained; ++Try) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Drained = Fx.Service.queueStats().Admission.Depth == 0;
  }
  EXPECT_TRUE(Drained) << "orphaned job leaked its admission ticket";
  EXPECT_GE(Server.stats().OrphanedJobs, 1u);
  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient Fresh(ClientOptions);
  ASSERT_EQ(Fresh.connect(), RpcError::None);
  serve::ServeRequest Request;
  Request.Model = Fx.Fp;
  Request.Spec = std::move(Spec);
  Request.LayerIndex = 0;
  RepairReport Report;
  serve::ServeReject Reject = serve::ServeReject::Saturated;
  ASSERT_EQ(Fresh.repair(Request, Report, Reject), RpcError::None);
  EXPECT_EQ(Reject, serve::ServeReject::None);
  EXPECT_EQ(Report.Status, RepairStatus::Success);
  Server.stop();
}

TEST(RpcEndToEnd, StopDrainsInFlightJobsLikeEngineTeardown) {
  ServiceFixture Fx("rpc-stop", /*Workers=*/1);
  RpcServer Server(Fx.Service, RpcServerOptions{});
  ASSERT_TRUE(Server.start());

  auto Net = std::make_shared<Network>([&] {
    Rng R(8304);
    return makeClassifier(R);
  }());
  Rng SpecR(9950);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Fx.Service.engine().submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  RpcClientOptions ClientOptions;
  ClientOptions.Port = Server.port();
  RpcClient Client(ClientOptions);
  ASSERT_EQ(Client.connect(), RpcError::None);
  serve::ServeRequest Request;
  Request.Model = Fx.Fp;
  Request.Spec = std::move(Spec);
  Request.LayerIndex = 0;
  SubmitReply Submitted;
  ASSERT_EQ(Client.submit(Request, Submitted), RpcError::None);
  ASSERT_TRUE(Submitted.accepted());

  // Graceful shutdown with a job queued and a client connected: stop()
  // must resolve the job and release its ticket before returning.
  Release.set_value();
  Server.stop();
  EXPECT_FALSE(Server.running());
  EXPECT_EQ(Fx.Service.queueStats().Admission.Depth, 0);
  (void)Blocker.report();
}

} // namespace
