//===- tests/syrenn_test.cpp - LinRegions transform tests --------------------===//
//
// The 1-D transform is validated against the paper's worked example
// (Equation 1) and by the defining property of a linear-region
// partition: the network is affine on each piece (midpoint test) and
// the pieces cover [0, 1]. The 2-D transform is validated by area
// conservation, per-region affineness, and pattern constancy.
//
//===----------------------------------------------------------------------===//

#include "syrenn/LineTransform.h"
#include "syrenn/PlaneTransform.h"

#include "nn/ActivationLayers.h"
#include "nn/ActivationPattern.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

Network makeFigure3Network() {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0}, {1.0}, {1.0}}), Vector{0.0, 0.0, -1.0}));
  Net.addLayer(std::make_unique<ReLULayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0, -1.0, 1.0}}), Vector{0.0}));
  return Net;
}

Network makeRandomReluNetwork(Rng &R, int InputSize, int Hidden, int Depth,
                              int OutputSize) {
  Network Net;
  int Size = InputSize;
  for (int D = 0; D < Depth; ++D) {
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, Hidden, Size, 1.2), randomVector(R, Hidden, 0.4)));
    Net.addLayer(std::make_unique<ReLULayer>(Hidden));
    Size = Hidden;
  }
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, OutputSize, Size, 1.2),
      randomVector(R, OutputSize, 0.4)));
  return Net;
}

// --- 1-D -----------------------------------------------------------------

TEST(LineTransform, Figure3Equation1) {
  // LinRegions(N1, [-1, 2]) = {[-1, 0], [0, 1], [1, 2]} (Equation 1).
  Network Net = makeFigure3Network();
  LinePartition P = lineRegions(Net, Vector{-1.0}, Vector{2.0});
  ASSERT_EQ(P.numPieces(), 3);
  // Breakpoints in t-space over [-1, 2]: x = 0 at t = 1/3, x = 1 at 2/3.
  EXPECT_NEAR(P.Ts[0], 0.0, 1e-12);
  EXPECT_NEAR(P.Ts[1], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(P.Ts[2], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(P.Ts[3], 1.0, 1e-12);
}

TEST(LineTransform, EndpointsAlwaysPresent) {
  Network Net = makeFigure3Network();
  LinePartition P = lineRegions(Net, Vector{0.2}, Vector{0.8});
  // Entirely inside one region.
  ASSERT_EQ(P.numPieces(), 1);
  EXPECT_DOUBLE_EQ(P.Ts.front(), 0.0);
  EXPECT_DOUBLE_EQ(P.Ts.back(), 1.0);
}

TEST(LineTransform, PointAtInterpolates) {
  LinePartition P;
  P.A = Vector{0.0, 10.0};
  P.B = Vector{2.0, 20.0};
  Vector Mid = P.pointAt(0.5);
  EXPECT_DOUBLE_EQ(Mid[0], 1.0);
  EXPECT_DOUBLE_EQ(Mid[1], 15.0);
}

class LineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LineSweep, PartitionIsAffinePerPieceAndPatternsConstant) {
  Rng R(GetParam());
  Network Net = makeRandomReluNetwork(R, 3, 8, 2, 2);
  Vector A = randomVector(R, 3, 2.0);
  Vector B = randomVector(R, 3, 2.0);
  LinePartition P = lineRegions(Net, A, B);

  ASSERT_GE(P.numPieces(), 1);
  EXPECT_DOUBLE_EQ(P.Ts.front(), 0.0);
  EXPECT_DOUBLE_EQ(P.Ts.back(), 1.0);
  for (size_t I = 0; I + 1 < P.Ts.size(); ++I)
    EXPECT_LT(P.Ts[I], P.Ts[I + 1]);

  for (int Piece = 0; Piece < P.numPieces(); ++Piece) {
    double T0 = P.Ts[static_cast<size_t>(Piece)];
    double T1 = P.Ts[static_cast<size_t>(Piece) + 1];
    // Affine on the piece: midpoint value equals endpoint average ...
    Vector Y0 = Net.evaluate(P.pointAt(T0));
    Vector Y1 = Net.evaluate(P.pointAt(T1));
    Vector Mid = Net.evaluate(P.pointAt(0.5 * (T0 + T1)));
    EXPECT_LT(Mid.maxAbsDiff((Y0 + Y1) * 0.5), 1e-7) << "piece " << Piece;
    // ... and at random interior convex combinations too.
    for (int Trial = 0; Trial < 3; ++Trial) {
      double S = R.uniform(0.05, 0.95);
      Vector Ys = Net.evaluate(P.pointAt(T0 + S * (T1 - T0)));
      Vector Expect = Y0 * (1.0 - S) + Y1 * S;
      EXPECT_LT(Ys.maxAbsDiff(Expect), 1e-7);
    }
    // Patterns agree at interior samples of the same piece.
    NetworkPattern PatMid =
        computePattern(Net, P.pointAt(P.midpoint(Piece)));
    NetworkPattern PatOther = computePattern(
        Net, P.pointAt(T0 + 0.25 * (T1 - T0) + 1e-9));
    EXPECT_TRUE(PatMid == PatOther) << "piece " << Piece;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LineSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(LineTransform, MaxPoolCrossingsSubdivide) {
  // conv-free network with a maxpool: regions change where window
  // entries cross.
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{1.0}, {-1.0}, {0.5}, {0.0}}),
      Vector{0.0, 0.0, 0.0, 0.2}));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(1, 2, 2, 2, 2, 2));
  LinePartition P = lineRegions(Net, Vector{-2.0}, Vector{2.0});
  ASSERT_GE(P.numPieces(), 2);
  // Function is max(x, -x, x/2, 0.2): affine per piece.
  for (int Piece = 0; Piece < P.numPieces(); ++Piece) {
    double T0 = P.Ts[static_cast<size_t>(Piece)];
    double T1 = P.Ts[static_cast<size_t>(Piece) + 1];
    Vector Y0 = Net.evaluate(P.pointAt(T0));
    Vector Y1 = Net.evaluate(P.pointAt(T1));
    Vector Mid = Net.evaluate(P.pointAt(0.5 * (T0 + T1)));
    EXPECT_LT(Mid.maxAbsDiff((Y0 + Y1) * 0.5), 1e-9);
  }
}

TEST(LineTransform, HardTanhDoubleThreshold) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{1.0}}), Vector{0.0}));
  Net.addLayer(std::make_unique<HardTanhLayer>(1));
  LinePartition P = lineRegions(Net, Vector{-3.0}, Vector{3.0});
  // Pieces: [-3,-1], [-1,1], [1,3].
  ASSERT_EQ(P.numPieces(), 3);
  EXPECT_NEAR(P.Ts[1], (-1.0 + 3.0) / 6.0, 1e-9);
}

// --- 2-D -----------------------------------------------------------------

class PlaneSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlaneSweep, RegionsTileThePolygonAndAreAffine) {
  Rng R(GetParam());
  Network Net = makeRandomReluNetwork(R, 4, 6, 2, 2);

  // An axis-aligned square embedded in a random 2-D affine subspace.
  Vector Origin = randomVector(R, 4);
  Vector E1 = randomVector(R, 4);
  Vector E2 = randomVector(R, 4);
  auto At = [&](double S, double T) {
    Vector V = Origin;
    V += E1 * S;
    V += E2 * T;
    return V;
  };
  std::vector<Vector> Polygon = {At(0, 0), At(1, 0), At(1, 1), At(0, 1)};

  std::vector<PlaneRegion> Regions = planeRegions(Net, Polygon);
  ASSERT_GE(Regions.size(), 1u);

  // Area conservation in the plane frame.
  double TotalArea = 0.0;
  for (const PlaneRegion &Region : Regions)
    TotalArea += Region.area();
  // The square's area in the orthonormal plane frame equals the area of
  // the parallelogram-mapped unit square: compute it from the frame.
  PlaneRegion Whole;
  Whole.InputVertices = Polygon;
  // Recompute expected area via the cross-product formula in the plane.
  double L1 = E1.norm2();
  Vector E2Orth = E2;
  Vector Proj = E1 * (E2.dot(E1) / (L1 * L1));
  E2Orth -= Proj;
  double ExpectedArea = L1 * E2Orth.norm2();
  EXPECT_NEAR(TotalArea, ExpectedArea, 1e-6 * ExpectedArea);

  // Affine within each region; pattern constant at interior points.
  for (const PlaneRegion &Region : Regions) {
    Vector C = Region.centroid();
    Vector Yc = Net.evaluate(C);
    NetworkPattern Pat = computePattern(Net, C);
    int N = static_cast<int>(Region.InputVertices.size());
    // Midpoint of centroid and each vertex stays in the (convex) region.
    for (int I = 0; I < N; ++I) {
      Vector MidPoint = (Region.InputVertices[static_cast<size_t>(I)] + C) *
                        0.5;
      Vector Expected =
          (Net.evaluate(Region.InputVertices[static_cast<size_t>(I)]) + Yc) *
          0.5;
      EXPECT_LT(Net.evaluate(MidPoint).maxAbsDiff(Expected), 1e-6);
      // Interior points share the centroid's pattern.
      Vector Inner = C;
      Inner += (Region.InputVertices[static_cast<size_t>(I)] - C) * 0.9;
      Vector YInner = Net.evaluate(Inner);
      Vector YLinear = Yc + (Net.evaluate(MidPoint) - Yc) * (0.9 / 0.5);
      EXPECT_LT(YInner.maxAbsDiff(YLinear), 1e-5);
    }
    (void)Pat;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlaneSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(PlaneTransform, SingleRegionForAffineNetwork) {
  Rng R(31);
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 3, 3),
                                                     randomVector(R, 3)));
  std::vector<Vector> Polygon = {Vector{0.0, 0.0, 0.0}, Vector{1.0, 0.0, 0.0},
                                 Vector{1.0, 1.0, 0.0}, Vector{0.0, 1.0, 0.0}};
  std::vector<PlaneRegion> Regions = planeRegions(Net, Polygon);
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_NEAR(Regions[0].area(), 1.0, 1e-9);
}

TEST(PlaneTransform, SplitCountMatchesSimpleGeometry) {
  // One ReLU over x: splits the square into x<0 and x>0 halves.
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{1.0, 0.0}}), Vector{0.0}));
  Net.addLayer(std::make_unique<ReLULayer>(1));
  std::vector<Vector> Polygon = {Vector{-1.0, -1.0}, Vector{1.0, -1.0},
                                 Vector{1.0, 1.0}, Vector{-1.0, 1.0}};
  std::vector<PlaneRegion> Regions = planeRegions(Net, Polygon);
  ASSERT_EQ(Regions.size(), 2u);
  EXPECT_NEAR(Regions[0].area() + Regions[1].area(), 4.0, 1e-9);
  EXPECT_NEAR(Regions[0].area(), 2.0, 1e-9);
}

} // namespace
