//===- tests/lp_test.cpp - LP solver tests ----------------------------------===//
//
// Unit tests on hand-checkable LPs, stress tests (degeneracy,
// Klee-Minty), and parameterized property tests: random feasible LPs
// must come back Optimal with feasible solutions satisfying the KKT
// sign conditions, and explicitly-constructed primal/dual pairs must
// exhibit strong duality.
//
//===----------------------------------------------------------------------===//

#include "lp/LinearProgram.h"
#include "lp/NormObjective.h"
#include "lp/Simplex.h"

#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

namespace {

using namespace prdnn;
using namespace prdnn::lp;

TEST(Lp, BoxOnlyMinimization) {
  LinearProgram P;
  P.addVariable(-2.0, 5.0, 1.0);  // min x0 -> -2
  P.addVariable(-2.0, 5.0, -1.0); // min -x1 -> x1 = 5
  P.addVariable(-2.0, 5.0, 0.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.X[0], -2.0, 1e-9);
  EXPECT_NEAR(S.X[1], 5.0, 1e-9);
  EXPECT_NEAR(S.Objective, -7.0, 1e-9);
}

TEST(Lp, BoxOnlyUnbounded) {
  LinearProgram P;
  P.addVariable(0.0, kInfinity, -1.0);
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, SolveStatus::Unbounded);
}

TEST(Lp, SimpleTriangle) {
  // min -x - y s.t. x + y <= 1, x, y >= 0. Optimum value -1.
  LinearProgram P;
  int X = P.addVariable(0.0, kInfinity, -1.0);
  int Y = P.addVariable(0.0, kInfinity, -1.0);
  P.addRowLe({X, Y}, {1.0, 1.0}, 1.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, -1.0, 1e-8);
  EXPECT_NEAR(S.X[0] + S.X[1], 1.0, 1e-8);
}

TEST(Lp, EqualityRows) {
  // x + y = 1, x - y = 0 -> x = y = 0.5.
  LinearProgram P;
  int X = P.addFreeVariable(1.0);
  int Y = P.addFreeVariable(0.0);
  P.addRowEq({X, Y}, {1.0, 1.0}, 1.0);
  P.addRowEq({X, Y}, {1.0, -1.0}, 0.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.X[0], 0.5, 1e-8);
  EXPECT_NEAR(S.X[1], 0.5, 1e-8);
}

TEST(Lp, TwoSidedRow) {
  // min x s.t. 2 <= x + y <= 4, 0 <= x,y <= 3 -> x = 0 (y covers).
  LinearProgram P;
  int X = P.addVariable(0.0, 3.0, 1.0);
  int Y = P.addVariable(0.0, 3.0, 0.0);
  P.addRow({X, Y}, {1.0, 1.0}, 2.0, 4.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 0.0, 1e-8);
}

TEST(Lp, InfeasibleBounds) {
  // x >= 1 and x <= 0 through rows.
  LinearProgram P;
  int X = P.addFreeVariable(1.0);
  P.addRowGe({X}, {1.0}, 1.0);
  P.addRowLe({X}, {1.0}, 0.0);
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
}

TEST(Lp, InfeasibleSystem) {
  // x + y <= 1, x >= 1, y >= 1.
  LinearProgram P;
  int X = P.addVariable(1.0, kInfinity, 0.0);
  int Y = P.addVariable(1.0, kInfinity, 0.0);
  P.addRowLe({X, Y}, {1.0, 1.0}, 1.0);
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
}

TEST(Lp, EmptyRowFeasibleAndInfeasible) {
  {
    LinearProgram P;
    P.addVariable(0.0, 1.0, 1.0);
    P.addRow({}, {}, -1.0, 1.0); // vacuous
    LpSolution S = solveLp(P);
    EXPECT_EQ(S.Status, SolveStatus::Optimal);
  }
  {
    LinearProgram P;
    P.addVariable(0.0, 1.0, 1.0);
    P.addRow({}, {}, 0.5, 1.0); // 0 not in [0.5, 1]
    LpSolution S = solveLp(P);
    EXPECT_EQ(S.Status, SolveStatus::Infeasible);
  }
}

TEST(Lp, UnboundedRay) {
  // min -x s.t. x - y <= 1, y >= 0: ray x = y + 1 -> -inf.
  LinearProgram P;
  int X = P.addFreeVariable(-1.0);
  int Y = P.addVariable(0.0, kInfinity, 0.0);
  P.addRowLe({X, Y}, {1.0, -1.0}, 1.0);
  LpSolution S = solveLp(P);
  EXPECT_EQ(S.Status, SolveStatus::Unbounded);
}

TEST(Lp, DegenerateVertex) {
  // Three constraints meeting at (1,1); optimum there.
  LinearProgram P;
  int X = P.addVariable(0.0, kInfinity, -1.0);
  int Y = P.addVariable(0.0, kInfinity, -1.0);
  P.addRowLe({X, Y}, {1.0, 1.0}, 2.0);
  P.addRowLe({X, Y}, {1.0, 0.0}, 1.0);
  P.addRowLe({X, Y}, {0.0, 1.0}, 1.0);
  P.addRowLe({X, Y}, {2.0, 1.0}, 3.0); // also passes through (1,1)
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.X[0], 1.0, 1e-8);
  EXPECT_NEAR(S.X[1], 1.0, 1e-8);
}

TEST(Lp, KleeMintyCube3D) {
  // Classic worst case for Dantzig pricing; checks anti-cycling and
  // correctness, not speed. max 4x1 + 2x2 + x3 (paper form scaled).
  LinearProgram P;
  int X1 = P.addVariable(0.0, kInfinity, -4.0);
  int X2 = P.addVariable(0.0, kInfinity, -2.0);
  int X3 = P.addVariable(0.0, kInfinity, -1.0);
  P.addRowLe({X1}, {1.0}, 5.0);
  P.addRowLe({X1, X2}, {4.0, 1.0}, 25.0);
  P.addRowLe({X1, X2, X3}, {8.0, 4.0, 1.0}, 125.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, -125.0, 1e-7);
}

TEST(Lp, FixedVariable) {
  LinearProgram P;
  int X = P.addVariable(2.0, 2.0, 5.0); // fixed at 2
  int Y = P.addVariable(0.0, 10.0, 1.0);
  P.addRowGe({X, Y}, {1.0, 1.0}, 5.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.X[0], 2.0, 1e-9);
  EXPECT_NEAR(S.X[1], 3.0, 1e-8);
}

TEST(Lp, DualSignsOnActiveRows) {
  // min x + y s.t. x + y >= 2 (active at optimum), x, y >= 0.
  LinearProgram P;
  int X = P.addVariable(0.0, kInfinity, 1.0);
  int Y = P.addVariable(0.0, kInfinity, 1.0);
  P.addRowGe({X, Y}, {1.0, 1.0}, 2.0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, 2.0, 1e-8);
  ASSERT_EQ(S.RowDuals.size(), 1u);
  // Row active at its lower bound: dual >= 0; stationarity gives 1.
  EXPECT_NEAR(S.RowDuals[0], 1.0, 1e-6);
}

// --- Random feasible LPs (property sweep) ----------------------------------

struct RandomLpParams {
  uint64_t Seed;
  int NumVars;
  int NumRows;
};

class RandomLpTest : public ::testing::TestWithParam<RandomLpParams> {};

TEST_P(RandomLpTest, OptimalFeasibleAndKktConsistent) {
  RandomLpParams Params = GetParam();
  Rng R(Params.Seed);

  LinearProgram P;
  std::vector<double> Witness(Params.NumVars);
  for (int J = 0; J < Params.NumVars; ++J) {
    P.addVariable(-10.0, 10.0, R.normal());
    Witness[J] = R.uniform(-5.0, 5.0);
  }
  // Rows built around a feasible witness point.
  for (int I = 0; I < Params.NumRows; ++I) {
    std::vector<int> Index;
    std::vector<double> Value;
    double Activity = 0.0;
    for (int J = 0; J < Params.NumVars; ++J) {
      if (!R.bernoulli(0.7))
        continue;
      double C = R.normal();
      Index.push_back(J);
      Value.push_back(C);
      Activity += C * Witness[J];
    }
    double Slack = R.uniform(0.0, 3.0);
    if (R.bernoulli(0.5))
      P.addRowLe(std::move(Index), std::move(Value), Activity + Slack);
    else
      P.addRowGe(std::move(Index), std::move(Value), Activity - Slack);
  }

  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  // Feasibility of the returned point.
  EXPECT_LT(P.maxViolation(S.X), 1e-5);
  // Cannot be worse than the witness.
  EXPECT_LE(S.Objective, P.objectiveValue(Witness) + 1e-6);

  // KKT sign conditions from the reported duals:
  //   rc_j = c_j - sum_i y_i a_ij, with rc >= 0 at lower bounds,
  //   rc <= 0 at upper bounds, rc ~ 0 for interior variables; duals obey
  //   y_i >= 0 on rows active at Lo, y_i <= 0 on rows active at Hi,
  //   y_i ~ 0 on inactive rows.
  std::vector<double> Rc(Params.NumVars);
  for (int J = 0; J < Params.NumVars; ++J)
    Rc[J] = P.objectiveCoef(J);
  for (int I = 0; I < P.numRows(); ++I) {
    const LpRow &Row = P.row(I);
    for (size_t K = 0; K < Row.Index.size(); ++K)
      Rc[Row.Index[K]] -= S.RowDuals[I] * Row.Value[K];
  }
  const double Tol = 1e-5;
  for (int J = 0; J < Params.NumVars; ++J) {
    bool AtLo = S.X[J] <= P.variableLo(J) + 1e-6;
    bool AtHi = S.X[J] >= P.variableHi(J) - 1e-6;
    if (AtLo && !AtHi) {
      EXPECT_GE(Rc[J], -Tol) << "var " << J;
    } else if (AtHi && !AtLo) {
      EXPECT_LE(Rc[J], Tol) << "var " << J;
    } else if (!AtLo && !AtHi) {
      EXPECT_NEAR(Rc[J], 0.0, Tol) << "var " << J;
    }
  }
  for (int I = 0; I < P.numRows(); ++I) {
    double Activity = P.rowActivity(I, S.X);
    const LpRow &Row = P.row(I);
    bool AtLo = std::isfinite(Row.Lo) && Activity <= Row.Lo + 1e-6;
    bool AtHi = std::isfinite(Row.Hi) && Activity >= Row.Hi - 1e-6;
    if (!AtLo && !AtHi) {
      EXPECT_NEAR(S.RowDuals[I], 0.0, Tol) << "row " << I;
    } else if (AtLo && !AtHi) {
      EXPECT_GE(S.RowDuals[I], -Tol) << "row " << I;
    } else if (AtHi && !AtLo) {
      EXPECT_LE(S.RowDuals[I], Tol) << "row " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLpTest,
    ::testing::Values(RandomLpParams{1, 3, 2}, RandomLpParams{2, 5, 8},
                      RandomLpParams{3, 10, 4}, RandomLpParams{4, 8, 20},
                      RandomLpParams{5, 20, 20}, RandomLpParams{6, 30, 60},
                      RandomLpParams{7, 50, 30}, RandomLpParams{8, 40, 80},
                      RandomLpParams{9, 60, 120}, RandomLpParams{10, 2, 40}));

// --- Strong duality on constructed primal/dual pairs ------------------------

class DualityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualityTest, PrimalDualObjectivesMatch) {
  // Primal:  min c.x  s.t. A x >= b, x >= 0.
  // Dual:    max b.y  s.t. A^T y <= c, y >= 0.
  // Constructed so both are feasible (hence both optimal, equal values).
  Rng R(GetParam());
  int N = R.uniformInt(3, 10);
  int M = R.uniformInt(3, 10);
  std::vector<std::vector<double>> A(M, std::vector<double>(N));
  for (int I = 0; I < M; ++I)
    for (int J = 0; J < N; ++J)
      A[I][J] = R.normal();

  // Primal witness x0 >= 0, b chosen below A x0.
  std::vector<double> X0(N), B(M);
  for (int J = 0; J < N; ++J)
    X0[J] = R.uniform(0.0, 2.0);
  for (int I = 0; I < M; ++I) {
    double Activity = 0.0;
    for (int J = 0; J < N; ++J)
      Activity += A[I][J] * X0[J];
    B[I] = Activity - R.uniform(0.0, 1.0);
  }
  // Dual witness y0 >= 0, c chosen above A^T y0.
  std::vector<double> Y0(M), C(N);
  for (int I = 0; I < M; ++I)
    Y0[I] = R.uniform(0.0, 2.0);
  for (int J = 0; J < N; ++J) {
    double Col = 0.0;
    for (int I = 0; I < M; ++I)
      Col += A[I][J] * Y0[I];
    C[J] = Col + R.uniform(0.0, 1.0);
  }

  LinearProgram Primal;
  for (int J = 0; J < N; ++J)
    Primal.addVariable(0.0, kInfinity, C[J]);
  for (int I = 0; I < M; ++I) {
    std::vector<int> Index(N);
    std::vector<double> Value(N);
    for (int J = 0; J < N; ++J) {
      Index[J] = J;
      Value[J] = A[I][J];
    }
    Primal.addRowGe(std::move(Index), std::move(Value), B[I]);
  }

  LinearProgram Dual;
  for (int I = 0; I < M; ++I)
    Dual.addVariable(0.0, kInfinity, -B[I]); // max b.y == min -b.y
  for (int J = 0; J < N; ++J) {
    std::vector<int> Index(M);
    std::vector<double> Value(M);
    for (int I = 0; I < M; ++I) {
      Index[I] = I;
      Value[I] = A[I][J];
    }
    Dual.addRowLe(std::move(Index), std::move(Value), C[J]);
  }

  LpSolution PrimalSol = solveLp(Primal);
  LpSolution DualSol = solveLp(Dual);
  ASSERT_EQ(PrimalSol.Status, SolveStatus::Optimal);
  ASSERT_EQ(DualSol.Status, SolveStatus::Optimal);
  EXPECT_NEAR(PrimalSol.Objective, -DualSol.Objective,
              1e-5 * (1.0 + std::fabs(PrimalSol.Objective)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DualityTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20, 21, 22));

// --- DeltaLp norm encodings --------------------------------------------------

TEST(DeltaLp, L1MinimalSolution) {
  // Delta_0 + Delta_1 >= 2: the l1-minimal solutions all have norm 2.
  DeltaLp D(2, Norm::L1);
  D.addConstraint({1.0, 1.0}, 2.0, kInfinity);
  LpSolution S = solveLp(D.problem());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  std::vector<double> Delta = D.extractDelta(S.X);
  EXPECT_NEAR(Delta[0] + Delta[1], 2.0, 1e-7);
  EXPECT_NEAR(S.Objective, 2.0, 1e-7);
  EXPECT_NEAR(std::fabs(Delta[0]) + std::fabs(Delta[1]), 2.0, 1e-7);
}

TEST(DeltaLp, L1PrefersSparseOverSpread) {
  // Delta_0 + 2*Delta_1 >= 2: the l1-minimum puts everything on the
  // higher-leverage coordinate: Delta = (0, 1).
  DeltaLp D(2, Norm::L1);
  D.addConstraint({1.0, 2.0}, 2.0, kInfinity);
  LpSolution S = solveLp(D.problem());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  std::vector<double> Delta = D.extractDelta(S.X);
  EXPECT_NEAR(Delta[0], 0.0, 1e-7);
  EXPECT_NEAR(Delta[1], 1.0, 1e-7);
}

TEST(DeltaLp, LInfSpreadsEvenly) {
  // Delta_0 + Delta_1 >= 2 under l-inf: optimum Delta = (1, 1).
  DeltaLp D(2, Norm::LInf);
  D.addConstraint({1.0, 1.0}, 2.0, kInfinity);
  LpSolution S = solveLp(D.problem());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  std::vector<double> Delta = D.extractDelta(S.X);
  EXPECT_NEAR(Delta[0], 1.0, 1e-7);
  EXPECT_NEAR(Delta[1], 1.0, 1e-7);
  EXPECT_NEAR(S.Objective, 1.0, 1e-7);
}

TEST(DeltaLp, NegativeDirectionConstraints) {
  DeltaLp D(2, Norm::L1);
  D.addConstraint({1.0, 0.0}, -kInfinity, -3.0); // Delta_0 <= -3
  LpSolution S = solveLp(D.problem());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  std::vector<double> Delta = D.extractDelta(S.X);
  EXPECT_NEAR(Delta[0], -3.0, 1e-7);
  EXPECT_NEAR(Delta[1], 0.0, 1e-7);
}

TEST(DeltaLp, InfeasibleWithinBox) {
  DeltaLp D(1, Norm::L1, /*Bound=*/1.0);
  D.addConstraint({1.0}, 5.0, kInfinity); // needs Delta_0 = 5 > box
  LpSolution S = solveLp(D.problem());
  EXPECT_EQ(S.Status, SolveStatus::Infeasible);
}

TEST(DeltaLp, L1PlusLInfCombines) {
  DeltaLp D(2, Norm::L1PlusLInf, kInfinity, /*LInfWeight=*/1.0);
  D.addConstraint({1.0, 1.0}, 2.0, kInfinity);
  LpSolution S = solveLp(D.problem());
  ASSERT_EQ(S.Status, SolveStatus::Optimal);
  std::vector<double> Delta = D.extractDelta(S.X);
  // l1 part is 2 regardless; the l-inf tie-break prefers the even
  // split with max 1 (objective 2 + 1 = 3).
  EXPECT_NEAR(Delta[0] + Delta[1], 2.0, 1e-7);
  EXPECT_NEAR(S.Objective, 3.0, 1e-6);
  EXPECT_NEAR(Delta[0], 1.0, 1e-6);
  EXPECT_NEAR(Delta[1], 1.0, 1e-6);
}

class DeltaLpRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaLpRandomTest, SolutionsSatisfyConstraints) {
  Rng R(GetParam());
  int N = R.uniformInt(2, 12);
  int Rows = R.uniformInt(1, 15);
  for (Norm Obj : {Norm::L1, Norm::LInf, Norm::L1PlusLInf}) {
    DeltaLp D(N, Obj, /*Bound=*/50.0);
    Rng Local = R.fork();
    std::vector<double> Witness(N);
    for (int J = 0; J < N; ++J)
      Witness[J] = Local.uniform(-2.0, 2.0);
    for (int I = 0; I < Rows; ++I) {
      std::vector<double> Coef(N);
      double Activity = 0.0;
      for (int J = 0; J < N; ++J) {
        Coef[J] = Local.normal();
        Activity += Coef[J] * Witness[J];
      }
      D.addConstraint(Coef, Activity - Local.uniform(0.0, 1.0),
                      Activity + Local.uniform(0.0, 1.0));
    }
    LpSolution S = solveLp(D.problem());
    ASSERT_EQ(S.Status, SolveStatus::Optimal) << toString(Obj);
    std::vector<double> Delta = D.extractDelta(S.X);
    // Feasible for the original Delta constraints.
    EXPECT_LT(D.problem().maxViolation(S.X), 1e-5);
    // No better than the witness (which is feasible by construction).
    EXPECT_LE(D.objectiveValue(Delta),
              D.objectiveValue(Witness) + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeltaLpRandomTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

// --- Parallel-vs-scalar kernel bit-identity ----------------------------------
//
// The blocked/parallel simplex kernels promise bit-for-bit the scalar
// path's behaviour at any thread count: the same pivot sequence
// (PivotHash, pivot/flip/refactor counts) and the same LpSolution bits
// (status, X, objective, duals). These tests drive every terminal
// status - Optimal, Infeasible, Unbounded, IterationLimit - plus
// Bland's-rule and degenerate pivoting, at 1/4/8 pool threads. The
// suite also runs in the CI ThreadSanitizer job.

/// Bitwise (memcmp) equality, so -0.0 vs 0.0 or NaN payload drift
/// fails where a tolerance compare would hide it.
void expectSameBits(const std::vector<double> &A, const std::vector<double> &B,
                    const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  if (!A.empty())
    EXPECT_EQ(0, std::memcmp(A.data(), B.data(), A.size() * sizeof(double)))
        << What;
}

void expectBitIdentical(const LpSolution &Scalar, const LpSolution &Par,
                        const std::string &What) {
  EXPECT_EQ(Scalar.Status, Par.Status) << What;
  EXPECT_EQ(Scalar.Iterations, Par.Iterations) << What;
  EXPECT_EQ(Scalar.Phase1Iterations, Par.Phase1Iterations) << What;
  // Same pivot sequence, not merely the same endpoint.
  EXPECT_EQ(Scalar.Stats.PivotHash, Par.Stats.PivotHash) << What;
  EXPECT_EQ(Scalar.Stats.Pivots, Par.Stats.Pivots) << What;
  EXPECT_EQ(Scalar.Stats.BoundFlips, Par.Stats.BoundFlips) << What;
  EXPECT_EQ(Scalar.Stats.Refactors, Par.Stats.Refactors) << What;
  expectSameBits(Scalar.X, Par.X, What + ": X");
  expectSameBits(Scalar.RowDuals, Par.RowDuals, What + ": RowDuals");
  double ScalarObj = Scalar.Objective, ParObj = Par.Objective;
  EXPECT_EQ(0, std::memcmp(&ScalarObj, &ParObj, sizeof(double)))
      << What << ": Objective";
}

/// Dense feasible LP around a witness (mixed <= / >= / two-sided rows).
LinearProgram makeDenseFeasibleLp(int Vars, int Rows, uint64_t Seed) {
  Rng R(Seed);
  LinearProgram P;
  std::vector<double> Witness(static_cast<size_t>(Vars));
  for (int J = 0; J < Vars; ++J) {
    P.addVariable(-10.0, 10.0, R.normal());
    Witness[static_cast<size_t>(J)] = R.uniform(-5.0, 5.0);
  }
  for (int I = 0; I < Rows; ++I) {
    std::vector<int> Index;
    std::vector<double> Value;
    double Activity = 0.0;
    for (int J = 0; J < Vars; ++J) {
      double C = R.normal();
      Index.push_back(J);
      Value.push_back(C);
      Activity += C * Witness[static_cast<size_t>(J)];
    }
    double Slack = R.uniform(0.1, 2.0);
    if (I % 3 == 0)
      P.addRow(std::move(Index), std::move(Value), Activity - Slack,
               Activity + Slack);
    else if (I % 3 == 1)
      P.addRowLe(std::move(Index), std::move(Value), Activity + Slack);
    else
      P.addRowGe(std::move(Index), std::move(Value), Activity - Slack);
  }
  return P;
}

struct KernelCase {
  std::string Name;
  LinearProgram P;
  SimplexOptions Base;
  SolveStatus Expected;
};

std::vector<KernelCase> kernelCases() {
  std::vector<KernelCase> Cases;

  {
    KernelCase C;
    C.Name = "optimal-dense";
    C.P = makeDenseFeasibleLp(48, 96, 1001);
    C.Expected = SolveStatus::Optimal;
    Cases.push_back(std::move(C));
  }
  {
    // The repair pipeline's own encoding: l1 split variables.
    KernelCase C;
    C.Name = "optimal-delta-l1";
    Rng R(1002);
    DeltaLp D(40, Norm::L1, 50.0);
    std::vector<double> Witness(40);
    for (double &Wj : Witness)
      Wj = R.uniform(-2.0, 2.0);
    for (int I = 0; I < 60; ++I) {
      std::vector<double> Coef(40);
      double Activity = 0.0;
      for (int J = 0; J < 40; ++J) {
        Coef[static_cast<size_t>(J)] = R.normal();
        Activity += Coef[static_cast<size_t>(J)] * Witness[static_cast<size_t>(J)];
      }
      D.addConstraint(Coef, Activity - R.uniform(0.0, 1.0),
                      Activity + R.uniform(0.0, 1.0));
    }
    C.P = D.problem();
    C.Expected = SolveStatus::Optimal;
    Cases.push_back(std::move(C));
  }
  {
    KernelCase C;
    C.Name = "infeasible";
    C.P = makeDenseFeasibleLp(32, 64, 1003);
    // Contradictory pair on variable 0 (its box is [-10, 10]).
    C.P.addRowGe({0}, {1.0}, 6.0);
    C.P.addRowLe({0}, {1.0}, -6.0);
    C.Expected = SolveStatus::Infeasible;
    Cases.push_back(std::move(C));
  }
  {
    // Feasible at zero, with a cost-improving ray x0 = 1 + x1.
    KernelCase C;
    C.Name = "unbounded";
    int X0 = C.P.addFreeVariable(-1.0);
    int X1 = C.P.addVariable(0.0, kInfinity, 0.0);
    C.P.addRowLe({X0, X1}, {1.0, -1.0}, 1.0);
    Rng R(1004);
    for (int J = 0; J < 30; ++J)
      C.P.addVariable(0.0, 5.0, R.normal());
    for (int I = 0; I < 40; ++I) {
      std::vector<int> Index;
      std::vector<double> Value;
      for (int J = 2; J < 32; ++J)
        if (R.bernoulli(0.5)) {
          Index.push_back(J);
          Value.push_back(R.normal());
        }
      if (Index.empty())
        continue;
      C.P.addRowLe(std::move(Index), std::move(Value), R.uniform(5.0, 20.0));
    }
    C.Expected = SolveStatus::Unbounded;
    Cases.push_back(std::move(C));
  }
  {
    KernelCase C;
    C.Name = "iteration-limit";
    C.P = makeDenseFeasibleLp(48, 96, 1005);
    C.Base.MaxIterations = 3;
    C.Expected = SolveStatus::IterationLimit;
    Cases.push_back(std::move(C));
  }
  {
    // Heavily degenerate vertex (all ones), with StallLimit = 1 so
    // pricing flips into Bland's rule almost immediately.
    KernelCase C;
    C.Name = "bland-degenerate";
    const int N = 10;
    for (int J = 0; J < N; ++J)
      C.P.addVariable(0.0, kInfinity, -1.0);
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        C.P.addRowLe({I, J}, {1.0, 1.0}, 2.0);
    for (int J = 0; J < N; ++J)
      C.P.addRowLe({J}, {1.0}, 1.0);
    C.Base.StallLimit = 1;
    C.Expected = SolveStatus::Optimal;
    Cases.push_back(std::move(C));
  }
  {
    // M = 300 kept rows crosses the ratio-test block size (RatioGrain
    // = 256), so the blocking-row preselection fills more than one
    // block and the serial merge actually crosses a block boundary -
    // the most order-sensitive code path in the parallel kernels.
    KernelCase C;
    C.Name = "ratio-multiblock";
    C.P = makeDenseFeasibleLp(60, 300, 1006);
    C.Expected = SolveStatus::Optimal;
    Cases.push_back(std::move(C));
  }
  {
    // Crosses a Bland sweep group (BlandGroupBlocks * PriceGrain =
    // 1024 columns): 1100 zero-cost padding variables occupy the low
    // column indices - their reduced cost is exactly 0, never
    // improving - while the degenerate improving variables (and the
    // slacks) all sit above index 1100, i.e. in the *second* sweep
    // group. Every Bland-mode pricing pass therefore scans group one,
    // finds nothing, and advances across the group boundary; StallLimit
    // = 1 plus the heavy degeneracy guarantees Bland mode engages.
    KernelCase C;
    C.Name = "bland-multigroup";
    const int Pad = 1100, N = 10;
    for (int J = 0; J < Pad; ++J)
      C.P.addVariable(0.0, 1.0, 0.0);
    std::vector<int> V(N);
    for (int J = 0; J < N; ++J)
      V[static_cast<size_t>(J)] = C.P.addVariable(0.0, kInfinity, -1.0);
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        C.P.addRowLe({V[static_cast<size_t>(I)], V[static_cast<size_t>(J)]},
                     {1.0, 1.0}, 2.0);
    for (int J = 0; J < N; ++J)
      C.P.addRowLe({V[static_cast<size_t>(J)]}, {1.0}, 1.0);
    C.Base.StallLimit = 1;
    C.Expected = SolveStatus::Optimal;
    Cases.push_back(std::move(C));
  }
  {
    // Klee-Minty with a stall limit of 1: Dantzig zigzag plus forced
    // Bland fallback in one case.
    KernelCase C;
    C.Name = "klee-minty-bland";
    int X1 = C.P.addVariable(0.0, kInfinity, -4.0);
    int X2 = C.P.addVariable(0.0, kInfinity, -2.0);
    int X3 = C.P.addVariable(0.0, kInfinity, -1.0);
    C.P.addRowLe({X1}, {1.0}, 5.0);
    C.P.addRowLe({X1, X2}, {4.0, 1.0}, 25.0);
    C.P.addRowLe({X1, X2, X3}, {8.0, 4.0, 1.0}, 125.0);
    C.Base.StallLimit = 1;
    C.Expected = SolveStatus::Optimal;
    Cases.push_back(std::move(C));
  }
  return Cases;
}

class LpKernelIdentityTest : public ::testing::Test {
protected:
  void TearDown() override { setGlobalThreadCount(SavedThreads); }
  int SavedThreads = globalThreadCount();
};

TEST_F(LpKernelIdentityTest, ParallelMatchesScalarAcrossThreadCounts) {
  for (KernelCase &Case : kernelCases()) {
    SimplexOptions ScalarOpts = Case.Base;
    ScalarOpts.ParallelKernels = false;
    LpSolution Scalar = solveLp(Case.P, ScalarOpts);
    EXPECT_EQ(Scalar.Status, Case.Expected) << Case.Name;
    EXPECT_FALSE(Scalar.Stats.ParallelKernels) << Case.Name;

    SimplexOptions ParOpts = Case.Base;
    ParOpts.ParallelKernels = true;
    ParOpts.ParallelMinDim = 1; // force the parallel kernels on small LPs
    for (int Threads : {1, 4, 8}) {
      setGlobalThreadCount(Threads);
      LpSolution Par = solveLp(Case.P, ParOpts);
      EXPECT_TRUE(Par.Stats.ParallelKernels) << Case.Name;
      expectBitIdentical(Scalar, Par,
                         Case.Name + " @" + std::to_string(Threads) +
                             " threads");
    }
  }
}

TEST_F(LpKernelIdentityTest, DefaultMinDimKeepsSmallLpsScalar) {
  // Below ParallelMinDim the default options run the scalar kernels -
  // small sweep LPs pay no pool overhead - and results are identical
  // to an explicit scalar solve.
  LinearProgram P = makeDenseFeasibleLp(16, 24, 1100);
  SimplexOptions Default; // ParallelKernels on, ParallelMinDim = 192
  setGlobalThreadCount(4);
  LpSolution Sol = solveLp(P, Default);
  EXPECT_FALSE(Sol.Stats.ParallelKernels);
  SimplexOptions ScalarOpts;
  ScalarOpts.ParallelKernels = false;
  expectBitIdentical(solveLp(P, ScalarOpts), Sol, "default-min-dim");
}

TEST_F(LpKernelIdentityTest, ParallelMinDimBoundaryBitIdentity) {
  // The parallel-kernel crossover is M >= ParallelMinDim (M = kept
  // rows; the default threshold is 192). Straddle the boundary with
  // M = 191 / 192 / 193 so both the last-scalar and first-parallel
  // sizes are pinned: the engaged path must flip exactly at the
  // threshold and both paths must agree bit-for-bit.
  for (int M : {191, 192, 193}) {
    LinearProgram P = makeDenseFeasibleLp(40, M, 1300 + M);
    SimplexOptions ScalarOpts;
    ScalarOpts.ParallelKernels = false;
    LpSolution Scalar = solveLp(P, ScalarOpts);
    ASSERT_EQ(Scalar.Status, SolveStatus::Optimal) << "M=" << M;
    SimplexOptions Default; // ParallelKernels on, ParallelMinDim = 192
    for (int Threads : {1, 4, 8}) {
      setGlobalThreadCount(Threads);
      LpSolution Sol = solveLp(P, Default);
      EXPECT_EQ(Sol.Stats.ParallelKernels, M >= Default.ParallelMinDim)
          << "M=" << M;
      expectBitIdentical(Scalar, Sol,
                         "min-dim boundary M=" + std::to_string(M) + " @" +
                             std::to_string(Threads) + " threads");
    }
  }
}

// --- Warm-start bases --------------------------------------------------------
//
// SimplexOptions::WarmBasis / ExportBasis: a solve can export its
// terminal basis and a later solve can start from it. The contract is
// that warm solves are bit-identical to cold ones in every *solution*
// bit (status, X, objective, duals) - pivot counts may (and should)
// drop - and that any rejected basis falls back to the cold path
// bit-exactly, pivot sequence included.

/// Solution-payload bit equality: what warm starts promise. Iteration
/// and pivot counters are intentionally not compared (a warm solve
/// pivots less by design).
void expectSameSolutionBits(const LpSolution &A, const LpSolution &B,
                            const std::string &What) {
  EXPECT_EQ(A.Status, B.Status) << What;
  expectSameBits(A.X, B.X, What + ": X");
  expectSameBits(A.RowDuals, B.RowDuals, What + ": RowDuals");
  double AObj = A.Objective, BObj = B.Objective;
  EXPECT_EQ(0, std::memcmp(&AObj, &BObj, sizeof(double)))
      << What << ": Objective";
}

TEST(LpWarmStart, ExactReplayIsBitIdenticalWithZeroPivots) {
  LinearProgram P = makeDenseFeasibleLp(48, 96, 2001);
  SimplexOptions Cold;
  Cold.ExportBasis = true;
  LpSolution ColdSol = solveLp(P, Cold);
  ASSERT_EQ(ColdSol.Status, SolveStatus::Optimal);
  ASSERT_NE(ColdSol.OptimalBasis, nullptr);
  EXPECT_FALSE(ColdSol.WarmStarted);
  EXPECT_GT(ColdSol.Stats.Pivots, 0);

  SimplexOptions Warm;
  Warm.WarmBasis = ColdSol.OptimalBasis.get();
  LpSolution WarmSol = solveLp(P, Warm);
  EXPECT_TRUE(WarmSol.WarmStarted);
  // Replaying the terminal basis of the very same LP re-derives the
  // optimum from the factorization alone: no pivots in either phase.
  EXPECT_EQ(WarmSol.Stats.Pivots, 0);
  expectSameSolutionBits(ColdSol, WarmSol, "exact replay");
}

TEST(LpWarmStart, RhsDriftWarmStartIsOptimalWithFewerPivots) {
  // Same constraint matrix, drifted row bounds. At the solver level a
  // drifted warm start is a *performance* device, not a determinism
  // one: it must reach an optimal solution in fewer pivots, but may
  // terminate at a different equally-optimal basis than the cold
  // solve, differing in low-order bits (which is exactly why the
  // repair engine's basis cache replays only digest-exact matches -
  // see PointRepair.cpp - and why this test compares objectives to
  // tolerance rather than bits).
  const int Vars = 48, NumRows = 96;
  Rng R(2002);
  LinearProgram Base, Drifted;
  std::vector<double> Witness(static_cast<size_t>(Vars));
  for (int J = 0; J < Vars; ++J) {
    double Cost = R.normal();
    Base.addVariable(-10.0, 10.0, Cost);
    Drifted.addVariable(-10.0, 10.0, Cost);
    Witness[static_cast<size_t>(J)] = R.uniform(-5.0, 5.0);
  }
  for (int I = 0; I < NumRows; ++I) {
    std::vector<int> Index;
    std::vector<double> Value;
    double Activity = 0.0;
    for (int J = 0; J < Vars; ++J) {
      double C = R.normal();
      Index.push_back(J);
      Value.push_back(C);
      Activity += C * Witness[static_cast<size_t>(J)];
    }
    double Slack = R.uniform(0.5, 2.0);
    double Shift = R.uniform(-0.05, 0.05);
    Base.addRow(Index, Value, Activity - Slack, Activity + Slack);
    Drifted.addRow(std::move(Index), std::move(Value),
                   Activity - Slack + Shift, Activity + Slack + Shift);
  }

  SimplexOptions Cold;
  Cold.ExportBasis = true;
  LpSolution BaseSol = solveLp(Base, Cold);
  ASSERT_EQ(BaseSol.Status, SolveStatus::Optimal);
  ASSERT_NE(BaseSol.OptimalBasis, nullptr);

  LpSolution ColdDrifted = solveLp(Drifted, Cold);
  ASSERT_EQ(ColdDrifted.Status, SolveStatus::Optimal);

  SimplexOptions Warm;
  Warm.WarmBasis = BaseSol.OptimalBasis.get();
  LpSolution WarmDrifted = solveLp(Drifted, Warm);
  EXPECT_TRUE(WarmDrifted.WarmStarted);
  ASSERT_EQ(WarmDrifted.Status, SolveStatus::Optimal);
  EXPECT_LT(WarmDrifted.Stats.Pivots, ColdDrifted.Stats.Pivots);
  double Scale = 1.0 + std::fabs(ColdDrifted.Objective);
  EXPECT_NEAR(ColdDrifted.Objective, WarmDrifted.Objective, 1e-7 * Scale);
  EXPECT_LE(Drifted.maxViolation(WarmDrifted.X), 1e-6);
}

TEST(LpWarmStart, InvalidBasisFallsBackToColdBitExactly) {
  LinearProgram P = makeDenseFeasibleLp(32, 64, 2004);
  SimplexOptions Cold;
  Cold.ExportBasis = true;
  LpSolution ColdSol = solveLp(P, Cold);
  ASSERT_EQ(ColdSol.Status, SolveStatus::Optimal);
  ASSERT_NE(ColdSol.OptimalBasis, nullptr);

  // Each corruption must be rejected by validation without perturbing
  // the solve: the fallback is the cold path, so the *entire* solve -
  // pivot sequence included - matches the cold run bit-for-bit.
  std::vector<std::pair<std::string, SimplexBasis>> Corrupt;
  {
    SimplexBasis B = *ColdSol.OptimalBasis;
    B.NumRows += 1; // dimension mismatch
    Corrupt.emplace_back("wrong-rows", std::move(B));
  }
  {
    SimplexBasis B = *ColdSol.OptimalBasis;
    B.Basic[1] = B.Basic[0]; // duplicate basic variable
    Corrupt.emplace_back("duplicate-basic", std::move(B));
  }
  {
    SimplexBasis B = *ColdSol.OptimalBasis;
    B.NonbasicState[0] = 7; // no such VarStatus
    Corrupt.emplace_back("bad-status-byte", std::move(B));
  }
  for (auto &[Name, Basis] : Corrupt) {
    SimplexOptions Warm;
    Warm.WarmBasis = &Basis;
    LpSolution Sol = solveLp(P, Warm);
    EXPECT_FALSE(Sol.WarmStarted) << Name;
    expectBitIdentical(ColdSol, Sol, "invalid basis: " + Name);
  }
}

TEST(LpWarmStart, SingularBasisFallsBackToColdBitExactly) {
  // x0 and x1 have identical constraint columns, so a basis holding
  // both is structurally plausible (passes validation) but singular:
  // refactorization fails and the solver must restart cold, bit-exact.
  LinearProgram P;
  P.addVariable(0.0, 10.0, -1.0); // x0
  P.addVariable(0.0, 10.0, -1.0); // x1, same columns as x0
  P.addVariable(0.0, 10.0, -2.0); // x2
  P.addRow({0, 1, 2}, {1.0, 1.0, 1.0}, 0.0, 5.0);
  P.addRow({0, 1, 2}, {2.0, 2.0, 1.0}, 0.0, 8.0);

  LpSolution ColdSol = solveLp(P);
  ASSERT_EQ(ColdSol.Status, SolveStatus::Optimal);

  SimplexBasis Singular;
  Singular.NumRows = 2;
  Singular.NumVars = 5; // 3 structurals + 2 slacks
  Singular.Basic = {0, 1};
  Singular.NonbasicState = {0, 0, /*x2=*/1, /*slacks=*/1, 1};
  SimplexOptions Warm;
  Warm.WarmBasis = &Singular;
  LpSolution Sol = solveLp(P, Warm);
  EXPECT_FALSE(Sol.WarmStarted);
  // The failed warm refactorization is honestly counted (one extra
  // Refactors tick); everything else - pivot sequence included - must
  // match the cold solve exactly.
  EXPECT_EQ(Sol.Stats.Refactors, ColdSol.Stats.Refactors + 1);
  EXPECT_EQ(ColdSol.Status, Sol.Status);
  EXPECT_EQ(ColdSol.Iterations, Sol.Iterations);
  EXPECT_EQ(ColdSol.Phase1Iterations, Sol.Phase1Iterations);
  EXPECT_EQ(ColdSol.Stats.PivotHash, Sol.Stats.PivotHash);
  EXPECT_EQ(ColdSol.Stats.Pivots, Sol.Stats.Pivots);
  EXPECT_EQ(ColdSol.Stats.BoundFlips, Sol.Stats.BoundFlips);
  expectSameSolutionBits(ColdSol, Sol, "singular basis");
}

TEST_F(LpKernelIdentityTest, StatsCountersAreCoherent) {
  LinearProgram P = makeDenseFeasibleLp(48, 96, 1200);
  LpSolution Sol = solveLp(P);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  EXPECT_EQ(Sol.Stats.Iterations, Sol.Iterations);
  EXPECT_EQ(Sol.Stats.Pivots + Sol.Stats.BoundFlips, Sol.Iterations);
  // run() refactorizes at least once per phase before believing a
  // terminal verdict.
  EXPECT_GE(Sol.Stats.Refactors, 2);
  EXPECT_GE(Sol.Stats.kernelSeconds(), 0.0);
}

} // namespace
