//===- tests/nn_test.cpp - layer/network/Jacobian tests ----------------------===//
//
// Covers: forward semantics of every layer kind, the casting hierarchy,
// finite-difference gradient checks for parameter gradients and VJPs,
// activation patterns and pinned evaluation, the exactness property of
// parameter Jacobians under pinned patterns (the computational core of
// Theorem 4.5), and serialization round-trips.
//
//===----------------------------------------------------------------------===//

#include "nn/ActivationLayers.h"
#include "nn/ActivationPattern.h"
#include "nn/Jacobian.h"
#include "nn/LinearLayers.h"
#include "nn/Network.h"
#include "nn/PoolLayers.h"
#include "nn/Serialization.h"

#include "support/Casting.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// The paper's running example N1 (Figure 3(a)):
///   h = ReLU([-1; 1; 1] x + [0; 0; -1]),  y = [-1 -1 1] h.
Network makeFigure3Network() {
  Network Net;
  Matrix W1 = Matrix::fromRows({{-1.0}, {1.0}, {1.0}});
  Vector B1{0.0, 0.0, -1.0};
  Net.addLayer(std::make_unique<FullyConnectedLayer>(W1, B1));
  Net.addLayer(std::make_unique<ReLULayer>(3));
  Matrix W2 = Matrix::fromRows({{-1.0, -1.0, 1.0}});
  Vector B2{0.0};
  Net.addLayer(std::make_unique<FullyConnectedLayer>(W2, B2));
  return Net;
}

/// A random PWL network mixing FC / ReLU / LeakyReLU / HardTanh.
Network makeRandomPwlNetwork(Rng &R, int InputSize, int Depth) {
  Network Net;
  int Size = InputSize;
  for (int D = 0; D < Depth; ++D) {
    int Next = R.uniformInt(3, 7);
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, Next, Size, 0.8), randomVector(R, Next, 0.3)));
    switch (R.uniformInt(0, 2)) {
    case 0:
      Net.addLayer(std::make_unique<ReLULayer>(Next));
      break;
    case 1:
      Net.addLayer(std::make_unique<LeakyReLULayer>(Next, 0.1));
      break;
    default:
      Net.addLayer(std::make_unique<HardTanhLayer>(Next));
      break;
    }
    Size = Next;
  }
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 2, Size, 0.8), randomVector(R, 2, 0.3)));
  return Net;
}

// --- Layer forward semantics -------------------------------------------------

TEST(Layers, FullyConnectedForward) {
  FullyConnectedLayer Fc(Matrix::fromRows({{1.0, 2.0}, {-1.0, 0.5}}),
                         Vector{0.5, -0.5});
  Vector Out = Fc.apply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(Out[0], 3.5);
  EXPECT_DOUBLE_EQ(Out[1], -1.0);
}

TEST(Layers, ReLUForwardAndPattern) {
  ReLULayer Relu(3);
  Vector Out = Relu.apply(Vector{-1.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(Out[0], 0.0);
  EXPECT_DOUBLE_EQ(Out[1], 0.0);
  EXPECT_DOUBLE_EQ(Out[2], 2.0);
  std::vector<int> Pat = Relu.pattern(Vector{-1.0, 0.0, 2.0});
  // Appendix C: exactly 0 linearizes to the zero region.
  EXPECT_EQ(Pat, (std::vector<int>{0, 0, 1}));
}

TEST(Layers, HardTanhRegions) {
  HardTanhLayer H(3);
  Vector Out = H.apply(Vector{-2.0, 0.5, 3.0});
  EXPECT_DOUBLE_EQ(Out[0], -1.0);
  EXPECT_DOUBLE_EQ(Out[1], 0.5);
  EXPECT_DOUBLE_EQ(Out[2], 1.0);
  EXPECT_EQ(H.pattern(Vector{-2.0, 0.5, 3.0}),
            (std::vector<int>{-1, 0, 1}));
  // Pinned saturated region evaluates to the constant piece.
  Vector Pinned = H.applyWithPattern(Vector{0.0, 0.0, 0.0},
                                     std::vector<int>{-1, 0, 1});
  EXPECT_DOUBLE_EQ(Pinned[0], -1.0);
  EXPECT_DOUBLE_EQ(Pinned[1], 0.0);
  EXPECT_DOUBLE_EQ(Pinned[2], 1.0);
}

TEST(Layers, LeakyReLUForward) {
  LeakyReLULayer L(2, 0.1);
  Vector Out = L.apply(Vector{-2.0, 3.0});
  EXPECT_DOUBLE_EQ(Out[0], -0.2);
  EXPECT_DOUBLE_EQ(Out[1], 3.0);
}

TEST(Layers, TanhSigmoidLinearizationExactAtCenter) {
  // Linearize[f, c](c) = f(c) (the property Theorem 4.4 relies on).
  TanhLayer T(2);
  SigmoidLayer S(2);
  Vector C{0.3, -1.2};
  EXPECT_LT(T.applyLinearized(C, C).maxAbsDiff(T.apply(C)), 1e-12);
  EXPECT_LT(S.applyLinearized(C, C).maxAbsDiff(S.apply(C)), 1e-12);
}

TEST(Layers, TanhLinearizedMatchesFigure6) {
  // Figure 6(b): linearize tanh around -1 and evaluate elsewhere.
  TanhLayer T(1);
  Vector Center{-1.0};
  Vector In{0.5};
  double Expected =
      std::tanh(-1.0) + (1.0 - std::tanh(-1.0) * std::tanh(-1.0)) * 1.5;
  EXPECT_NEAR(T.applyLinearized(Center, In)[0], Expected, 1e-12);
}

TEST(Layers, MaxPoolForwardPatternPinned) {
  // 1 channel, 2x4 input, 2x2 windows, stride 2 -> 1x2 output.
  MaxPool2DLayer Pool(1, 2, 4, 2, 2, 2);
  Vector In{1.0, 5.0, 2.0, 0.0, //
            3.0, -1.0, 7.0, 2.0};
  Vector Out = Pool.apply(In);
  ASSERT_EQ(Out.size(), 2);
  EXPECT_DOUBLE_EQ(Out[0], 5.0);
  EXPECT_DOUBLE_EQ(Out[1], 7.0);
  std::vector<int> Pat = Pool.pattern(In);
  EXPECT_EQ(Pat[0], 1); // top-right of the first window
  EXPECT_EQ(Pat[1], 2); // bottom-left of the second window
  // Pinned evaluation selects the pinned taps regardless of values.
  Vector Other{9.0, 0.0, 0.0, 9.0, //
               0.0, 0.0, 0.0, 0.0};
  Vector Pinned = Pool.applyWithPattern(Other, Pat);
  EXPECT_DOUBLE_EQ(Pinned[0], 0.0);
  EXPECT_DOUBLE_EQ(Pinned[1], 0.0);
  // Linearization around a center equals selection at its argmax.
  EXPECT_LT(Pool.applyLinearized(In, Other).maxAbsDiff(Pinned), 1e-12);
}

TEST(Layers, AvgPoolForward) {
  AvgPool2DLayer Pool(1, 2, 2, 2, 2, 2);
  Vector Out = Pool.apply(Vector{1.0, 2.0, 3.0, 6.0});
  ASSERT_EQ(Out.size(), 1);
  EXPECT_DOUBLE_EQ(Out[0], 3.0);
}

TEST(Layers, Conv2DForwardKnownValues) {
  // 1x3x3 input, one 2x2 kernel of ones, stride 1, no padding.
  std::vector<double> Kernel{1.0, 1.0, 1.0, 1.0};
  std::vector<double> Bias{0.5};
  Conv2DLayer Conv(1, 3, 3, 1, 2, 2, 1, 0, Kernel, Bias);
  Vector In{1.0, 2.0, 3.0, //
            4.0, 5.0, 6.0, //
            7.0, 8.0, 9.0};
  Vector Out = Conv.apply(In);
  ASSERT_EQ(Out.size(), 4);
  EXPECT_DOUBLE_EQ(Out[0], 1 + 2 + 4 + 5 + 0.5);
  EXPECT_DOUBLE_EQ(Out[3], 5 + 6 + 8 + 9 + 0.5);
}

TEST(Layers, Conv2DPaddingAndStride) {
  std::vector<double> Kernel{1.0};
  std::vector<double> Bias{0.0};
  // 1x1 kernel, stride 2, pad 0 over 1x4x4: output 1x2x2 samples the
  // even grid.
  Conv2DLayer Conv(1, 4, 4, 1, 1, 1, 2, 0, Kernel, Bias);
  Vector In(16);
  for (int I = 0; I < 16; ++I)
    In[I] = I;
  Vector Out = Conv.apply(In);
  ASSERT_EQ(Out.size(), 4);
  EXPECT_DOUBLE_EQ(Out[0], 0.0);
  EXPECT_DOUBLE_EQ(Out[1], 2.0);
  EXPECT_DOUBLE_EQ(Out[2], 8.0);
  EXPECT_DOUBLE_EQ(Out[3], 10.0);
}

// --- Casting hierarchy -------------------------------------------------------

TEST(Layers, CastingHierarchy) {
  FullyConnectedLayer Fc(Matrix::identity(2), Vector(2));
  ReLULayer Relu(2);
  MaxPool2DLayer Pool(1, 2, 2, 2, 2, 2);
  AvgPool2DLayer Avg(1, 2, 2, 2, 2, 2);

  Layer *L = &Fc;
  EXPECT_TRUE(isa<LinearLayer>(L));
  EXPECT_FALSE(isa<ActivationLayer>(L));
  EXPECT_TRUE(isa<FullyConnectedLayer>(L));

  L = &Relu;
  EXPECT_TRUE(isa<ActivationLayer>(L));
  EXPECT_TRUE(isa<ElementwiseActivation>(L));
  EXPECT_FALSE(isa<LinearLayer>(L));

  L = &Pool;
  EXPECT_TRUE(isa<ActivationLayer>(L));
  EXPECT_FALSE(isa<ElementwiseActivation>(L));
  EXPECT_TRUE(L->isPiecewiseLinear());

  L = &Avg;
  EXPECT_TRUE(isa<LinearLayer>(L));
  EXPECT_EQ(dyn_cast<ActivationLayer>(L), nullptr);
}

// --- Gradient checks ---------------------------------------------------------

/// Central finite differences of Layer::apply wrt params, dotted with a
/// random output direction, compared against accumulateParamGrad.
void checkParamGradient(LinearLayer &L, Rng &R) {
  Vector In = randomVector(R, L.inputSize());
  Vector Dir = randomVector(R, L.outputSize());
  std::vector<double> Grad(static_cast<size_t>(L.numParams()), 0.0);
  L.accumulateParamGrad(In, Dir, Grad);

  std::vector<double> Params;
  L.getParams(Params);
  const double Eps = 1e-6;
  for (int P = 0; P < L.numParams(); ++P) {
    std::vector<double> Mod = Params;
    Mod[P] += Eps;
    L.setParams(Mod);
    double Plus = L.apply(In).dot(Dir);
    Mod[P] -= 2 * Eps;
    L.setParams(Mod);
    double Minus = L.apply(In).dot(Dir);
    L.setParams(Params);
    double Fd = (Plus - Minus) / (2 * Eps);
    EXPECT_NEAR(Grad[P], Fd, 1e-5 * (1.0 + std::fabs(Fd))) << "param " << P;
  }
}

TEST(Gradients, FullyConnectedParamGrad) {
  Rng R(101);
  FullyConnectedLayer Fc(randomMatrix(R, 4, 3), randomVector(R, 4));
  checkParamGradient(Fc, R);
}

TEST(Gradients, Conv2DParamGrad) {
  Rng R(102);
  std::vector<double> Kernel(2 * 1 * 2 * 2);
  std::vector<double> Bias(2);
  for (double &V : Kernel)
    V = R.normal();
  for (double &V : Bias)
    V = R.normal();
  Conv2DLayer Conv(1, 4, 4, 2, 2, 2, 1, 1, Kernel, Bias);
  checkParamGradient(Conv, R);
}

/// Input VJP against finite differences for any layer.
void checkInputVjp(const Layer &L, const Vector &In, Rng &R) {
  Vector Dir = randomVector(R, L.outputSize());
  Vector Vjp;
  if (const auto *Linear = dyn_cast<LinearLayer>(&L))
    Vjp = Linear->vjpLinear(Dir);
  else
    Vjp = cast<ActivationLayer>(L).vjpLinearized(In, Dir);
  const double Eps = 1e-6;
  for (int I = 0; I < L.inputSize(); ++I) {
    Vector Plus = In, Minus = In;
    Plus[I] += Eps;
    Minus[I] -= Eps;
    double Fd = (L.apply(Plus).dot(Dir) - L.apply(Minus).dot(Dir)) / (2 * Eps);
    EXPECT_NEAR(Vjp[I], Fd, 1e-5 * (1.0 + std::fabs(Fd))) << "input " << I;
  }
}

TEST(Gradients, InputVjpAllLayerKinds) {
  Rng R(103);
  {
    FullyConnectedLayer Fc(randomMatrix(R, 3, 5), randomVector(R, 3));
    checkInputVjp(Fc, randomVector(R, 5), R);
  }
  {
    std::vector<double> Kernel(1 * 1 * 3 * 3);
    for (double &V : Kernel)
      V = R.normal();
    Conv2DLayer Conv(1, 4, 4, 1, 3, 3, 1, 1, Kernel, {0.1});
    checkInputVjp(Conv, randomVector(R, 16), R);
  }
  {
    // Offset inputs away from kinks so finite differences are valid.
    TanhLayer T(4);
    checkInputVjp(T, randomVector(R, 4), R);
    SigmoidLayer S(4);
    checkInputVjp(S, randomVector(R, 4), R);
    ReLULayer Relu(4);
    Vector In = randomVector(R, 4);
    for (int I = 0; I < 4; ++I)
      if (std::fabs(In[I]) < 0.1)
        In[I] = 0.5;
    checkInputVjp(Relu, In, R);
    AvgPool2DLayer Avg(1, 2, 2, 2, 2, 2);
    checkInputVjp(Avg, randomVector(R, 4), R);
  }
}

// --- Network / pattern semantics ---------------------------------------------

TEST(Network, Figure3ForwardValues) {
  Network Net = makeFigure3Network();
  EXPECT_NEAR(Net.evaluate(Vector{0.5})[0], -0.5, 1e-12);
  EXPECT_NEAR(Net.evaluate(Vector{1.5})[0], -1.0, 1e-12);
  EXPECT_NEAR(Net.evaluate(Vector{-0.5})[0], -0.5, 1e-12);
  EXPECT_NEAR(Net.evaluate(Vector{-1.0})[0], -1.0, 1e-12);
  EXPECT_NEAR(Net.evaluate(Vector{2.0})[0], -1.0, 1e-12);
}

TEST(Network, DeepCopyIsIndependent) {
  Network Net = makeFigure3Network();
  Network Copy = Net;
  auto &Fc = cast<FullyConnectedLayer>(Copy.layer(0));
  std::vector<double> Params;
  Fc.getParams(Params);
  for (double &P : Params)
    P += 1.0;
  Fc.setParams(Params);
  EXPECT_NE(Copy.evaluate(Vector{0.5})[0], Net.evaluate(Vector{0.5})[0]);
  EXPECT_NEAR(Net.evaluate(Vector{0.5})[0], -0.5, 1e-12);
}

TEST(Network, ParameterizedLayerIndices) {
  Network Net = makeFigure3Network();
  EXPECT_EQ(Net.parameterizedLayerIndices(), (std::vector<int>{0, 2}));
  EXPECT_EQ(Net.totalParams(), (3 + 3) + (3 + 1));
}

TEST(Network, PatternPinnedEqualsPlainOnSameInput) {
  Rng R(104);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Network Net = makeRandomPwlNetwork(R, 3, 2);
    Vector X = randomVector(R, 3);
    NetworkPattern Pat = computePattern(Net, X);
    Vector Plain = Net.evaluate(X);
    Vector Pinned = evaluateWithPattern(Net, X, Pat);
    EXPECT_LT(Plain.maxAbsDiff(Pinned), 1e-9);
  }
}

TEST(Network, PatternExtendsRegionAffineFunction) {
  // Pinning x0's pattern and evaluating at x gives the affine extension
  // of x0's region; for x in the same region it matches evaluate(x).
  Network Net = makeFigure3Network();
  NetworkPattern Pat = computePattern(Net, Vector{0.5});
  // Same region [0, 1]:
  EXPECT_NEAR(evaluateWithPattern(Net, Vector{0.25}, Pat)[0], -0.25, 1e-12);
  // Affine extension beyond the region: region [0,1] has N(x) = -x.
  EXPECT_NEAR(evaluateWithPattern(Net, Vector{1.5}, Pat)[0], -1.5, 1e-12);
}

// --- Parameter Jacobians (Theorem 4.5 machinery) ----------------------------

TEST(Jacobian, MatchesPaperRunningExample) {
  // Paper §3.1: with Delta over (w_x->h1, w_x->h2, w_x->h3, bias terms),
  // J at X1 = 0.5 has -0.5 on the x->h2 weight, and J at X2 = 1.5 is
  // (0, -1.5, 1.5) on the weights with 1 on h3's bias.
  Network Net = makeFigure3Network();
  JacobianResult R1 = paramJacobian(Net, 0, Vector{0.5});
  // Param layout: W(3x1) rows then bias(3).
  ASSERT_EQ(R1.J.rows(), 1);
  ASSERT_EQ(R1.J.cols(), 6);
  EXPECT_NEAR(R1.J(0, 0), 0.0, 1e-12);   // x->h1 (h1 inactive)
  EXPECT_NEAR(R1.J(0, 1), -0.5, 1e-12);  // x->h2
  EXPECT_NEAR(R1.J(0, 2), 0.0, 1e-12);   // x->h3 (h3 inactive)
  EXPECT_NEAR(R1.J(0, 4), -1.0, 1e-12);  // h2 bias
  EXPECT_NEAR(R1.Output[0], -0.5, 1e-12);

  JacobianResult R2 = paramJacobian(Net, 0, Vector{1.5});
  EXPECT_NEAR(R2.J(0, 1), -1.5, 1e-12); // x->h2
  EXPECT_NEAR(R2.J(0, 2), 1.5, 1e-12);  // x->h3
  EXPECT_NEAR(R2.J(0, 5), 1.0, 1e-12);  // h3 bias
  EXPECT_NEAR(R2.Output[0], -1.0, 1e-12);
}

struct JacobianSweepParams {
  uint64_t Seed;
  int Depth;
};

class JacobianExactness
    : public ::testing::TestWithParam<JacobianSweepParams> {};

TEST_P(JacobianExactness, PinnedPatternMakesJacobianExact) {
  // The core of Theorem 4.5: with the activation pattern pinned (the
  // DDNN value channel), N'(x; Delta) = N(x) + J Delta holds *exactly*,
  // even for large Delta.
  Rng R(GetParam().Seed);
  Network Net = makeRandomPwlNetwork(R, 4, GetParam().Depth);
  std::vector<int> ParamLayers = Net.parameterizedLayerIndices();
  Vector X = randomVector(R, 4);
  NetworkPattern Pat = computePattern(Net, X);

  for (int LayerIdx : ParamLayers) {
    JacobianResult Jr = paramJacobian(Net, LayerIdx, X, &Pat);
    auto &Target = cast<FullyConnectedLayer>(Net.layer(LayerIdx));
    int NumParams = Target.numParams();

    // Large random delta.
    std::vector<double> Delta(static_cast<size_t>(NumParams));
    for (double &D : Delta)
      D = 2.0 * R.normal();

    Network Perturbed = Net;
    cast<FullyConnectedLayer>(Perturbed.layer(LayerIdx)).addToParams(Delta);

    Vector Predicted = Jr.Output;
    Predicted += Jr.J.apply(Vector(Delta));
    Vector Actual = evaluateWithPattern(Perturbed, X, Pat);
    EXPECT_LT(Actual.maxAbsDiff(Predicted), 1e-8)
        << "layer " << LayerIdx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobianExactness,
    ::testing::Values(JacobianSweepParams{201, 1}, JacobianSweepParams{202, 2},
                      JacobianSweepParams{203, 3}, JacobianSweepParams{204, 4},
                      JacobianSweepParams{205, 2}, JacobianSweepParams{206, 3},
                      JacobianSweepParams{207, 1}, JacobianSweepParams{208,
                                                                       4}));

TEST(Jacobian, SmallDeltaMatchesUnpinnedEvaluation) {
  // For deltas small enough not to flip any activation, the plain
  // (coupled) network also satisfies the linear model.
  Rng R(210);
  Network Net = makeRandomPwlNetwork(R, 3, 2);
  Vector X = randomVector(R, 3);
  int LayerIdx = Net.parameterizedLayerIndices().front();
  JacobianResult Jr = paramJacobian(Net, LayerIdx, X);
  auto &Target = cast<FullyConnectedLayer>(Net.layer(LayerIdx));
  std::vector<double> Delta(static_cast<size_t>(Target.numParams()));
  for (double &D : Delta)
    D = 1e-7 * R.normal();
  Network Perturbed = Net;
  cast<FullyConnectedLayer>(Perturbed.layer(LayerIdx)).addToParams(Delta);
  Vector Predicted = Jr.Output;
  Predicted += Jr.J.apply(Vector(Delta));
  EXPECT_LT(Perturbed.evaluate(X).maxAbsDiff(Predicted), 1e-10);
}

TEST(Jacobian, ConvLayerExactUnderPinnedPattern) {
  Rng R(211);
  // conv -> relu -> maxpool -> fc network.
  Network Net;
  std::vector<double> Kernel(2 * 1 * 3 * 3);
  for (double &V : Kernel)
    V = 0.5 * R.normal();
  Net.addLayer(std::make_unique<Conv2DLayer>(1, 6, 6, 2, 3, 3, 1, 1, Kernel,
                                             std::vector<double>{0.1, -0.1}));
  Net.addLayer(std::make_unique<ReLULayer>(2 * 6 * 6));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(2, 6, 6, 2, 2, 2));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 3, 2 * 3 * 3, 0.5), randomVector(R, 3, 0.2)));
  Vector X = randomVector(R, 36);
  NetworkPattern Pat = computePattern(Net, X);

  for (int LayerIdx : Net.parameterizedLayerIndices()) {
    JacobianResult Jr = paramJacobian(Net, LayerIdx, X, &Pat);
    auto &Target = cast<LinearLayer>(Net.layer(LayerIdx));
    std::vector<double> Delta(static_cast<size_t>(Target.numParams()));
    for (double &D : Delta)
      D = R.normal();
    Network Perturbed = Net;
    cast<LinearLayer>(Perturbed.layer(LayerIdx)).addToParams(Delta);
    Vector Predicted = Jr.Output;
    Predicted += Jr.J.apply(Vector(Delta));
    Vector Actual = evaluateWithPattern(Perturbed, X, Pat);
    EXPECT_LT(Actual.maxAbsDiff(Predicted), 1e-8) << "layer " << LayerIdx;
  }
}

TEST(Jacobian, SmoothActivationsFirstOrder) {
  // For tanh networks the Jacobian is first-order accurate: error decays
  // quadratically in the perturbation size.
  Rng R(212);
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 4, 3),
                                                     randomVector(R, 4)));
  Net.addLayer(std::make_unique<TanhLayer>(4));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 2, 4),
                                                     randomVector(R, 2)));
  Vector X = randomVector(R, 3);
  JacobianResult Jr = paramJacobian(Net, 0, X);
  auto &Target = cast<FullyConnectedLayer>(Net.layer(0));
  std::vector<double> Dir(static_cast<size_t>(Target.numParams()));
  for (double &D : Dir)
    D = R.normal();

  auto ErrorAt = [&](double Scale) {
    std::vector<double> Delta = Dir;
    for (double &D : Delta)
      D *= Scale;
    Network Perturbed = Net;
    cast<FullyConnectedLayer>(Perturbed.layer(0)).addToParams(Delta);
    Vector Predicted = Jr.Output;
    Predicted += Jr.J.apply(Vector(Delta));
    return Perturbed.evaluate(X).maxAbsDiff(Predicted);
  };
  double E1 = ErrorAt(1e-3);
  double E2 = ErrorAt(1e-4);
  // Quadratic decay: shrinking the step 10x shrinks error ~100x.
  EXPECT_LT(E2, E1 / 30.0);
}

// --- Serialization -----------------------------------------------------------

// --- Batched engine ----------------------------------------------------------
//
// The batch APIs promise bit-for-bit agreement with the per-point
// paths for any thread count; every comparison below therefore demands
// a max-abs-diff of exactly 0.0.

TEST(Batch, NetworkApplyBatchMatchesEvaluateBitForBit) {
  Rng R(401);
  Network Net = makeRandomPwlNetwork(R, 5, 3);
  const int NumPoints = 23;
  std::vector<Vector> Points;
  for (int I = 0; I < NumPoints; ++I)
    Points.push_back(randomVector(R, 5));
  for (int Threads : {1, 4}) {
    setGlobalThreadCount(Threads);
    Matrix Out = Net.applyBatch(Matrix::fromRowVectors(Points));
    ASSERT_EQ(Out.rows(), NumPoints);
    for (int I = 0; I < NumPoints; ++I)
      EXPECT_EQ(Out.row(I).maxAbsDiff(
                    Net.evaluate(Points[static_cast<size_t>(I)])),
                0.0)
          << "point " << I << " with " << Threads << " threads";
  }
  setGlobalThreadCount(1);
}

TEST(Batch, ConvApplyBatchMatchesApply) {
  // Conv2D's flat-tap batched kernel must agree with apply exactly.
  Rng R(402);
  Conv2DLayer Conv(/*InChannels=*/1, /*InHeight=*/4, /*InWidth=*/4,
                   /*OutChannels=*/2, /*KernelH=*/2, /*KernelW=*/2,
                   /*Stride=*/1, /*Pad=*/0,
                   {0.5, -0.25, 1.0, 0.75, -0.5, 0.25, -1.0, 0.125},
                   {0.1, -0.2});
  std::vector<Vector> Points;
  for (int I = 0; I < 9; ++I)
    Points.push_back(randomVector(R, Conv.inputSize()));
  Matrix Out = Conv.applyBatch(Matrix::fromRowVectors(Points));
  for (int I = 0; I < 9; ++I)
    EXPECT_EQ(Out.row(I).maxAbsDiff(
                  Conv.apply(Points[static_cast<size_t>(I)])),
              0.0);
}

TEST(Batch, ComputePatternBatchMatchesScalar) {
  Rng R(403);
  Network Net = makeRandomPwlNetwork(R, 4, 3);
  std::vector<Vector> Points;
  for (int I = 0; I < 11; ++I)
    Points.push_back(randomVector(R, 4));
  std::vector<NetworkPattern> Batch =
      computePatternBatch(Net, Matrix::fromRowVectors(Points));
  ASSERT_EQ(Batch.size(), Points.size());
  for (size_t I = 0; I < Points.size(); ++I)
    EXPECT_TRUE(Batch[I] == computePattern(Net, Points[I]))
        << "point " << I;
}

TEST(Batch, ParamJacobianBatchMatchesScalarBitForBit) {
  Rng R(404);
  Network Net = makeRandomPwlNetwork(R, 5, 3);
  const int NumPoints = 17;
  std::vector<Vector> Points;
  std::vector<NetworkPattern> Patterns;
  for (int I = 0; I < NumPoints; ++I) {
    Points.push_back(randomVector(R, 5));
    // Pin every third point to the region of a *different* input, so
    // the batch must honor off-region pinned patterns (Appendix B).
    Patterns.push_back(computePattern(
        Net, I % 3 == 0 ? randomVector(R, 5) : Points.back()));
  }
  std::vector<const NetworkPattern *> Pinned;
  for (int I = 0; I < NumPoints; ++I)
    Pinned.push_back(I % 2 == 0 ? &Patterns[static_cast<size_t>(I)]
                                : nullptr);

  for (int LayerIdx : Net.parameterizedLayerIndices()) {
    for (int Threads : {1, 4}) {
      setGlobalThreadCount(Threads);
      std::vector<JacobianResult> Batch =
          paramJacobianBatch(Net, LayerIdx, Points, Pinned);
      ASSERT_EQ(static_cast<int>(Batch.size()), NumPoints);
      for (int I = 0; I < NumPoints; ++I) {
        JacobianResult Scalar =
            paramJacobian(Net, LayerIdx, Points[static_cast<size_t>(I)],
                          Pinned[static_cast<size_t>(I)]);
        EXPECT_EQ(Batch[static_cast<size_t>(I)].J.maxAbsDiff(Scalar.J), 0.0)
            << "layer " << LayerIdx << " point " << I << " threads "
            << Threads;
        EXPECT_EQ(
            Batch[static_cast<size_t>(I)].Output.maxAbsDiff(Scalar.Output),
            0.0)
            << "layer " << LayerIdx << " point " << I << " threads "
            << Threads;
      }
    }
  }
  setGlobalThreadCount(1);
}

TEST(Batch, ParamJacobianBatchMaxPoolFallback) {
  // MaxPool2D is PWL but not elementwise, exercising the per-row VJP
  // fallback of the batched backward sweep.
  Rng R(405);
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 3, 0.8), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(/*Channels=*/1, /*InH=*/4,
                                                /*InW=*/4, /*WindowH=*/2,
                                                /*WindowW=*/2, /*Stride=*/2));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 2, 4, 0.8), randomVector(R, 2, 0.3)));
  std::vector<Vector> Points;
  for (int I = 0; I < 7; ++I)
    Points.push_back(randomVector(R, 3));
  std::vector<JacobianResult> Batch = paramJacobianBatch(Net, 0, Points);
  for (int I = 0; I < 7; ++I) {
    JacobianResult Scalar =
        paramJacobian(Net, 0, Points[static_cast<size_t>(I)]);
    EXPECT_EQ(Batch[static_cast<size_t>(I)].J.maxAbsDiff(Scalar.J), 0.0);
    EXPECT_EQ(
        Batch[static_cast<size_t>(I)].Output.maxAbsDiff(Scalar.Output),
        0.0);
  }
}

TEST(Serialization, RoundTripAllLayerKinds) {
  Rng R(301);
  Network Net;
  std::vector<double> Kernel(2 * 1 * 3 * 3);
  for (double &V : Kernel)
    V = R.normal();
  Net.addLayer(std::make_unique<Conv2DLayer>(1, 6, 6, 2, 3, 3, 1, 1, Kernel,
                                             std::vector<double>{0.3, -0.2}));
  Net.addLayer(std::make_unique<ReLULayer>(72));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(2, 6, 6, 2, 2, 2));
  Net.addLayer(std::make_unique<AvgPool2DLayer>(2, 3, 3, 3, 3, 3));
  Net.addLayer(std::make_unique<FlattenLayer>(2));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 4, 2),
                                                     randomVector(R, 4)));
  Net.addLayer(std::make_unique<LeakyReLULayer>(4, 0.01));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 3, 4),
                                                     randomVector(R, 3)));
  Net.addLayer(std::make_unique<HardTanhLayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 2, 3),
                                                     randomVector(R, 2)));
  Net.addLayer(std::make_unique<TanhLayer>(2));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(randomMatrix(R, 2, 2),
                                                     randomVector(R, 2)));
  Net.addLayer(std::make_unique<SigmoidLayer>(2));

  std::ostringstream Os;
  writeNetwork(Net, Os);
  std::istringstream Is(Os.str());
  std::optional<Network> Loaded = readNetwork(Is);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->numLayers(), Net.numLayers());
  for (int Trial = 0; Trial < 10; ++Trial) {
    Vector X = randomVector(R, 36);
    EXPECT_LT(Loaded->evaluate(X).maxAbsDiff(Net.evaluate(X)), 1e-12);
  }
}

TEST(Serialization, RejectsMalformedInput) {
  {
    std::istringstream Is("not-a-network v1\nlayers 0\n");
    EXPECT_FALSE(readNetwork(Is).has_value());
  }
  {
    std::istringstream Is("prdnn-network v2\nlayers 0\n");
    EXPECT_FALSE(readNetwork(Is).has_value());
  }
  {
    std::istringstream Is("prdnn-network v1\nlayers 1\nfc 2 2\n1 2 3\n");
    EXPECT_FALSE(readNetwork(Is).has_value()); // truncated params
  }
  {
    std::istringstream Is("prdnn-network v1\nlayers 1\nwat 3\n");
    EXPECT_FALSE(readNetwork(Is).has_value()); // unknown layer kind
  }
}

TEST(Serialization, EmptyNetworkRoundTrip) {
  Network Net;
  std::ostringstream Os;
  writeNetwork(Net, Os);
  std::istringstream Is(Os.str());
  std::optional<Network> Loaded = readNetwork(Is);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->numLayers(), 0);
}

} // namespace
