//===- tests/kernels_test.cpp - determinism-tier kernel tests -----------------===//
//
// The Strict/Fast kernel tier contract (src/linalg/README.md):
// Strict is bit-for-bit the seed's scalar accumulation at any thread
// count; Fast is epsilon-verified against Strict, including on
// adversarial inputs (NaN, signed zero, denormals, catastrophic
// cancellation); the ambient tier travels by KernelTierScope; the tier
// round-trips through the RPC wire codec; and no cached artifact ever
// crosses tiers (a Fast artifact can never serve a Strict request, and
// Fast LP solves never touch the warm-start basis cache). Runs under
// the CI ThreadSanitizer job.
//
//===----------------------------------------------------------------------===//

#include "linalg/Kernels.h"

#include "api/RepairEngine.h"
#include "cache/Fingerprint.h"
#include "linalg/Matrix.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "persist/Codec.h"
#include "rpc/Wire.h"
#include "serve/RepairService.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

namespace {

using namespace prdnn;
using persist::ByteReader;
using persist::ByteWriter;

constexpr double kEps = 2.220446049250313e-16; // 2^-52
constexpr double kBoundFactor = 16.0;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// The epsilon contract for one pair of values accumulated over \p N
/// products whose absolute sum is \p AbsSum.
void expectWithinEpsilon(double Strict, double Fast, double AbsSum, int N) {
  if (std::isnan(Strict) || std::isnan(Fast)) {
    EXPECT_EQ(std::isnan(Strict), std::isnan(Fast));
    return;
  }
  double Bound = kBoundFactor * static_cast<double>(N) * kEps * AbsSum;
  EXPECT_LE(std::fabs(Fast - Strict), Bound);
}

/// Every element of a Fast product vs its Strict twin, with the
/// magnitude envelope |A|*|B| computed under Strict.
void expectMatrixWithinEpsilon(const Matrix &Strict, const Matrix &Fast,
                               const Matrix &AbsRef, int N) {
  ASSERT_EQ(Strict.rows(), Fast.rows());
  ASSERT_EQ(Strict.cols(), Fast.cols());
  for (int I = 0; I < Strict.rows(); ++I)
    for (int J = 0; J < Strict.cols(); ++J)
      expectWithinEpsilon(Strict(I, J), Fast(I, J), AbsRef(I, J), N);
}

Matrix absMatrix(const Matrix &M) {
  Matrix A(M.rows(), M.cols());
  for (int I = 0; I < M.rows(); ++I)
    for (int J = 0; J < M.cols(); ++J)
      A(I, J) = std::fabs(M(I, J));
  return A;
}

Network makeClassifier(Rng &R, int InputSize = 5, int Hidden = 12,
                       int Classes = 3) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Hidden, InputSize, 0.9), randomVector(R, Hidden, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Classes, Hidden, 0.9), randomVector(R, Classes, 0.3)));
  return Net;
}

PointSpec makeSpec(Rng &R, const Network &Net, int Points) {
  PointSpec Spec;
  for (int I = 0; I < Points; ++I)
    Spec.push_back({randomVector(R, Net.inputSize(), 1.5),
                    classificationConstraint(
                        Net.outputSize(),
                        R.uniformInt(0, Net.outputSize() - 1), 1e-3),
                    std::nullopt});
  return Spec;
}

// --- Tier plumbing ----------------------------------------------------------

TEST(KernelTier, AmbientTierDefaultsStrictAndScopesNestAndRestore) {
  EXPECT_EQ(linalg::currentKernelTier(), linalg::Determinism::Strict);
  {
    linalg::KernelTierScope Fast(linalg::Determinism::Fast);
    EXPECT_EQ(linalg::currentKernelTier(), linalg::Determinism::Fast);
    {
      linalg::KernelTierScope Strict(linalg::Determinism::Strict);
      EXPECT_EQ(linalg::currentKernelTier(), linalg::Determinism::Strict);
    }
    EXPECT_EQ(linalg::currentKernelTier(), linalg::Determinism::Fast);
  }
  EXPECT_EQ(linalg::currentKernelTier(), linalg::Determinism::Strict);
}

TEST(KernelTier, BackendNameIsResolvedAndStable) {
  const char *Name = linalg::kernelBackendName();
  ASSERT_NE(Name, nullptr);
  EXPECT_STREQ(Name, linalg::kernelBackendName());
  // The SIMD flag and the name must agree.
  if (linalg::kernelBackendIsSimd())
    EXPECT_STRNE(Name, "portable");
  else
    EXPECT_STREQ(Name, "portable");
}

// --- Strict bit-identity ----------------------------------------------------

TEST(KernelTier, StrictMatchesInlineScalarReferenceBitwise) {
  // The Strict tier is the seed's accumulation order: a plain
  // ascending-k scalar loop (blocked ikj with one K block, row
  // parallelism only - element-independent).
  Rng R(301);
  const int M = 23, K = 57, N = 31; // K under the 256 GEMM block size
  Matrix A = randomMatrix(R, M, K);
  Matrix B = randomMatrix(R, K, N);
  Vector X = randomVector(R, K);

  Matrix RefMul(M, N);
  for (int I = 0; I < M; ++I)
    for (int Kk = 0; Kk < K; ++Kk)
      for (int J = 0; J < N; ++J)
        RefMul(I, J) += A(I, Kk) * B(Kk, J);
  Vector RefApply(M);
  for (int I = 0; I < M; ++I) {
    double Sum = 0.0;
    for (int Kk = 0; Kk < K; ++Kk)
      Sum += A(I, Kk) * X[Kk];
    RefApply[I] = Sum;
  }

  int Saved = globalThreadCount();
  for (int Threads : {1, 4}) {
    setGlobalThreadCount(Threads);
    Matrix C = A.multiply(B, linalg::Determinism::Strict);
    Vector Y = A.apply(X, linalg::Determinism::Strict);
    for (int I = 0; I < M; ++I) {
      EXPECT_EQ(Y[I], RefApply[I]) << "threads " << Threads;
      for (int J = 0; J < N; ++J)
        EXPECT_EQ(C(I, J), RefMul(I, J)) << "threads " << Threads;
    }
    // The default entry point under no scope is Strict - same bits.
    Matrix CDefault = A.multiply(B);
    for (int I = 0; I < M; ++I)
      for (int J = 0; J < N; ++J)
        EXPECT_EQ(CDefault(I, J), C(I, J));
  }
  setGlobalThreadCount(Saved);
}

// --- Fast epsilon contract --------------------------------------------------

TEST(KernelTier, FastWithinEpsilonOfStrictOnRandomMatrices) {
  Rng R(302);
  int Saved = globalThreadCount();
  // Sizes straddle the SIMD lane widths (16/8/4) and their remainders.
  for (int N : {3, 17, 33, 100}) {
    Matrix A = randomMatrix(R, N, N);
    Matrix B = randomMatrix(R, N, N);
    Matrix AbsMul =
        absMatrix(A).multiply(absMatrix(B), linalg::Determinism::Strict);
    Matrix AbsMulT = absMatrix(A).multiplyTransposed(
        absMatrix(B), linalg::Determinism::Strict);
    for (int Threads : {1, 4}) {
      setGlobalThreadCount(Threads);
      expectMatrixWithinEpsilon(
          A.multiply(B, linalg::Determinism::Strict),
          A.multiply(B, linalg::Determinism::Fast), AbsMul, N);
      expectMatrixWithinEpsilon(
          A.multiplyTransposed(B, linalg::Determinism::Strict),
          A.multiplyTransposed(B, linalg::Determinism::Fast), AbsMulT, N);
    }
  }
  setGlobalThreadCount(Saved);
}

TEST(KernelTier, FastPropagatesNaNLikeStrict) {
  Rng R(303);
  const int N = 40;
  Matrix A = randomMatrix(R, N, N);
  Matrix B = randomMatrix(R, N, N);
  A(3, 17) = std::numeric_limits<double>::quiet_NaN();
  Matrix Strict = A.multiply(B, linalg::Determinism::Strict);
  Matrix Fast = A.multiply(B, linalg::Determinism::Fast);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      EXPECT_EQ(std::isnan(Strict(I, J)), std::isnan(Fast(I, J)))
          << I << "," << J;
  // Row 3 hit the NaN in every dot; other rows are clean.
  EXPECT_TRUE(std::isnan(Fast(3, 0)));
  EXPECT_FALSE(std::isnan(Fast(2, 0)));
}

TEST(KernelTier, FastHandlesSignedZeroAndDenormals) {
  const int N = 19;
  Matrix A(3, N), B(N, 3);
  for (int J = 0; J < N; ++J) {
    A(0, J) = -0.0;
    A(1, J) = (J % 2 == 0) ? 5e-310 : -5e-310; // denormal inputs
    A(2, J) = 0.0;
    for (int C = 0; C < 3; ++C)
      B(J, C) = (C == 1) ? 2.0 : 1.0;
  }
  Matrix Strict = A.multiply(B, linalg::Determinism::Strict);
  Matrix Fast = A.multiply(B, linalg::Determinism::Fast);
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J) {
      // Everything here is exact in both tiers (zeros, and denormal
      // sums that never round): the tiers agree to the last bit of
      // magnitude, and nothing becomes NaN/Inf.
      EXPECT_TRUE(std::isfinite(Fast(I, J)));
      EXPECT_NEAR(Strict(I, J), Fast(I, J), 1e-300) << I << "," << J;
    }
}

TEST(KernelTier, FastSurvivesCatastrophicCancellation) {
  // Alternating +/- 1e15 pairs with a tiny residual: the dot's exact
  // value is the residual, and the epsilon bound - which scales with
  // sum |a_i b_i|, not with the result - is what makes the contract
  // honest about cancellation.
  const int N = 64;
  Matrix A(1, N), B(N, 1);
  double AbsSum = 0.0;
  for (int J = 0; J < N; ++J) {
    A(0, J) = (J % 2 == 0) ? 1e15 : -1e15;
    B(J, 0) = 1.0;
    AbsSum += 1e15;
  }
  A(0, N - 1) = 0.5; // odd slot: cancels all but this
  AbsSum += 0.5 - 1e15;
  Matrix Strict = A.multiply(B, linalg::Determinism::Strict);
  Matrix Fast = A.multiply(B, linalg::Determinism::Fast);
  expectWithinEpsilon(Strict(0, 0), Fast(0, 0), AbsSum, N);
}

// --- Wire codec round-trip --------------------------------------------------

TEST(KernelTier, TierRoundTripsThroughWireCodec) {
  Rng R(304);
  Network Net = makeClassifier(R);
  NetworkFingerprint Fp = fingerprintNetwork(Net);

  // Explicit Fast request tier + Fast LP tier.
  serve::ServeRequest Request;
  Request.Model = Fp;
  Request.Spec = makeSpec(R, Net, 2);
  Request.LayerIndex = 2;
  Request.Options.Determinism = linalg::Determinism::Fast;
  Request.Options.Lp.Determinism = linalg::Determinism::Fast;

  ByteWriter W;
  rpc::writeServeRequest(W, Request);
  ByteReader Reader(W.buffer().data(), W.buffer().size());
  serve::ServeRequest Back;
  ASSERT_TRUE(rpc::readServeRequest(Reader, Back));
  EXPECT_EQ(Reader.remaining(), 0u);
  ASSERT_TRUE(Back.Options.Determinism.has_value());
  EXPECT_EQ(*Back.Options.Determinism, linalg::Determinism::Fast);
  EXPECT_EQ(Back.Options.Lp.Determinism, linalg::Determinism::Fast);
  // Canonical: re-encoding reproduces the bytes.
  ByteWriter Again;
  rpc::writeServeRequest(Again, Back);
  EXPECT_EQ(W.buffer(), Again.buffer());

  // Unset tier survives as unset (the server default must stay the
  // server's decision, not harden into Strict on the wire).
  Request.Options.Determinism.reset();
  Request.Options.Lp.Determinism = linalg::Determinism::Strict;
  ByteWriter W2;
  rpc::writeServeRequest(W2, Request);
  ByteReader Reader2(W2.buffer().data(), W2.buffer().size());
  serve::ServeRequest Back2;
  ASSERT_TRUE(rpc::readServeRequest(Reader2, Back2));
  EXPECT_FALSE(Back2.Options.Determinism.has_value());
  EXPECT_EQ(Back2.Options.Lp.Determinism, linalg::Determinism::Strict);
}

TEST(KernelTier, ReportCarriesTierThroughWireCodec) {
  Rng R(305);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeSpec(R, *Net, 4);

  EngineOptions Options;
  Options.EnableCache = false;
  Options.Determinism = linalg::Determinism::Fast;
  RepairEngine Engine(Options);
  RepairReport Report =
      Engine.run(RepairRequest::points(Net, 2, Spec));
  ASSERT_EQ(Report.Status, RepairStatus::Success);
  ASSERT_EQ(Report.Result.Stats.Determinism, linalg::Determinism::Fast);
  ASSERT_FALSE(Report.Sweep.empty());
  EXPECT_EQ(Report.Sweep[0].Determinism, linalg::Determinism::Fast);

  ByteWriter W;
  rpc::writeRepairReport(W, Report);
  ByteReader Reader(W.buffer().data(), W.buffer().size());
  RepairReport Back;
  ASSERT_TRUE(rpc::readRepairReport(Reader, Back));
  EXPECT_EQ(Back.Result.Stats.Determinism, linalg::Determinism::Fast);
  ASSERT_EQ(Back.Sweep.size(), Report.Sweep.size());
  EXPECT_EQ(Back.Sweep[0].Determinism, linalg::Determinism::Fast);
}

// --- Tier-keyed caching -----------------------------------------------------

TEST(KernelTier, HashDeterminismKeepsStrictKeysAndForksFastKeys) {
  Hasher Plain;
  Plain.u64(1);
  Hasher StrictH;
  StrictH.u64(1);
  hashDeterminism(StrictH, linalg::Determinism::Strict);
  Hasher FastH;
  FastH.u64(1);
  hashDeterminism(FastH, linalg::Determinism::Fast);

  // Strict absorbs nothing: every pre-tier cache key (all Strict by
  // construction) is unchanged, so warm L2 stores survive the upgrade.
  Digest128 PlainD = Plain.digest();
  Digest128 StrictD = StrictH.digest();
  Digest128 FastD = FastH.digest();
  EXPECT_EQ(PlainD.Hi, StrictD.Hi);
  EXPECT_EQ(PlainD.Lo, StrictD.Lo);
  EXPECT_FALSE(FastD.Hi == StrictD.Hi && FastD.Lo == StrictD.Lo);
}

TEST(KernelTier, FastArtifactsNeverServeStrictRequests) {
  Rng R(306);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeSpec(R, *Net, 6);

  RepairEngine Engine((EngineOptions()));
  ASSERT_TRUE(Engine.hasCache());

  auto RunTier = [&](linalg::Determinism Tier) {
    RepairRequest Request = RepairRequest::points(Net, 2, Spec);
    Request.Options.Determinism = Tier;
    return Engine.run(Request);
  };

  RepairReport Strict1 = RunTier(linalg::Determinism::Strict);
  ASSERT_EQ(Strict1.Status, RepairStatus::Success);
  EXPECT_GT(Strict1.CacheMisses, 0);

  RepairReport Strict2 = RunTier(linalg::Determinism::Strict);
  EXPECT_GT(Strict2.CacheHits, 0);
  EXPECT_EQ(Strict2.CacheMisses, 0);

  // Same network, same spec, other tier: nothing may be served from
  // the Strict entries.
  RepairReport Fast1 = RunTier(linalg::Determinism::Fast);
  ASSERT_EQ(Fast1.Status, RepairStatus::Success);
  EXPECT_EQ(Fast1.CacheHits, 0);
  EXPECT_GT(Fast1.CacheMisses, 0);

  // And the Fast entries serve later Fast requests normally.
  RepairReport Fast2 = RunTier(linalg::Determinism::Fast);
  EXPECT_GT(Fast2.CacheHits, 0);
  EXPECT_EQ(Fast2.CacheMisses, 0);

  // Strict results are bit-identical across the interleaving (the
  // Fast runs shared nothing with them).
  RepairReport Strict3 = RunTier(linalg::Determinism::Strict);
  EXPECT_EQ(Strict3.Result.DeltaL1, Strict1.Result.DeltaL1);
  EXPECT_EQ(Strict3.Result.DeltaLInf, Strict1.Result.DeltaLInf);
}

TEST(KernelTier, FastSolvesNeverTouchTheBasisCache) {
  Rng R(307);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeSpec(R, *Net, 6);

  RepairEngine Engine((EngineOptions()));
  auto RunTier = [&](linalg::Determinism Tier) {
    RepairRequest Request = RepairRequest::points(Net, 2, Spec);
    Request.Options.Determinism = Tier;
    return Engine.run(Request);
  };

  // Warm the basis cache with two Strict runs; the second replays.
  RepairReport Strict1 = RunTier(linalg::Determinism::Strict);
  ASSERT_EQ(Strict1.Status, RepairStatus::Success);
  RepairReport Strict2 = RunTier(linalg::Determinism::Strict);
  EXPECT_GT(Strict2.Result.Stats.BasisHits, 0);

  // Fast runs solve cold - no basis reads (hits) even when warm
  // Strict bases exist, and repeated Fast runs stay cold too.
  RepairReport Fast1 = RunTier(linalg::Determinism::Fast);
  EXPECT_EQ(Fast1.Result.Stats.BasisHits, 0);
  RepairReport Fast2 = RunTier(linalg::Determinism::Fast);
  EXPECT_EQ(Fast2.Result.Stats.BasisHits, 0);
  EXPECT_EQ(Fast2.Result.Stats.BasisMisses, 0); // gated off, not missing
}

// --- Solution-level agreement ----------------------------------------------

TEST(KernelTier, FastRepairAgreesWithStrictAtSolutionLevel) {
  Rng R(308);
  Network Net = makeClassifier(R, 5, 14, 4);
  Rng SpecR(309);
  PointSpec Spec = makeSpec(SpecR, Net, 8);
  int Layer = Net.parameterizedLayerIndices().back();

  RepairOptions StrictOptions;
  StrictOptions.Determinism = linalg::Determinism::Strict;
  RepairResult Strict = repairPoints(Net, Layer, Spec, StrictOptions);
  ASSERT_EQ(Strict.Status, RepairStatus::Success);
  EXPECT_EQ(Strict.Stats.Determinism, linalg::Determinism::Strict);

  RepairOptions FastOptions;
  FastOptions.Determinism = linalg::Determinism::Fast;
  RepairResult Fast = repairPoints(Net, Layer, Spec, FastOptions);
  ASSERT_EQ(Fast.Status, RepairStatus::Success);
  EXPECT_EQ(Fast.Stats.Determinism, linalg::Determinism::Fast);

  // Solution-level: same objective norm to epsilon (the Delta vector
  // itself may differ - Fast simplex can land on another vertex of an
  // equal-objective face), and the repaired network still satisfies
  // the spec on re-verification.
  EXPECT_NEAR(Fast.DeltaL1, Strict.DeltaL1,
              1e-6 * std::max(1.0, Strict.DeltaL1));
  EXPECT_LE(Fast.Stats.VerifiedViolation, 1e-6);
}

} // namespace
