//===- tests/support_test.cpp - support library tests ----------------------===//

#include "support/Casting.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace {

using namespace prdnn;

// --- Casting ---------------------------------------------------------------

enum class ShapeKind { Circle, Square };

struct Shape {
  explicit Shape(ShapeKind K) : Kind(K) {}
  ShapeKind getKind() const { return Kind; }

private:
  ShapeKind Kind;
};

struct Circle : Shape {
  Circle() : Shape(ShapeKind::Circle) {}
  static bool classof(const Shape *S) {
    return S->getKind() == ShapeKind::Circle;
  }
};

struct Square : Shape {
  Square() : Shape(ShapeKind::Square) {}
  static bool classof(const Shape *S) {
    return S->getKind() == ShapeKind::Square;
  }
};

TEST(Casting, IsaAndDynCast) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(isa<Circle>(S));
  EXPECT_FALSE(isa<Square>(S));
  EXPECT_NE(dyn_cast<Circle>(S), nullptr);
  EXPECT_EQ(dyn_cast<Square>(S), nullptr);
  EXPECT_EQ(cast<Circle>(S), &C);
  const Shape *CS = &C;
  EXPECT_TRUE(isa<Circle>(*CS));
  EXPECT_EQ(dyn_cast<Circle>(CS), &C);
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, UniformInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
    double V = R.uniform(-3.0, 5.0);
    EXPECT_GE(V, -3.0);
    EXPECT_LT(V, 5.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng R(11);
  bool Seen[5] = {false, false, false, false, false};
  for (int I = 0; I < 500; ++I) {
    int V = R.uniformInt(0, 4);
    ASSERT_GE(V, 0);
    ASSERT_LE(V, 4);
    Seen[V] = true;
  }
  for (bool B : Seen)
    EXPECT_TRUE(B);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng R(13);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng R(99);
  Rng A = R.fork();
  Rng B = R.fork();
  // Forked streams should differ from each other.
  int Same = 0;
  for (int I = 0; I < 50; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng R(5);
  std::vector<int> V{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

// --- Timer -----------------------------------------------------------------

TEST(Timer, PhaseProfilerAccumulates) {
  PhaseProfiler Prof;
  Prof.add("lp", 1.5);
  Prof.add("lp", 0.5);
  Prof.add("jacobian", 2.0);
  EXPECT_DOUBLE_EQ(Prof.get("lp"), 2.0);
  EXPECT_DOUBLE_EQ(Prof.get("jacobian"), 2.0);
  EXPECT_DOUBLE_EQ(Prof.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(Prof.total(), 4.0);
}

TEST(Timer, ScopedPhaseRecordsNonnegative) {
  PhaseProfiler Prof;
  { ScopedPhase Phase(Prof, "work"); }
  EXPECT_GE(Prof.get("work"), 0.0);
}

// --- Table -----------------------------------------------------------------

TEST(Table, FormatDuration) {
  EXPECT_EQ(formatDuration(12.34), "12.3s");
  EXPECT_EQ(formatDuration(99.0), "1m39.0s");
  EXPECT_EQ(formatDuration(170.8), "2m50.8s");
  EXPECT_EQ(formatDuration(3600 + 22 * 60 + 18.7), "1h22m18.7s");
  EXPECT_EQ(formatDuration(-1.0), "0.0s");
}

TEST(Table, FormatPercentAndDouble) {
  EXPECT_EQ(formatPercent(0.036), "3.6");
  EXPECT_EQ(formatPercent(0.1234, 2), "12.34");
  EXPECT_EQ(formatDouble(3.14159, 3), "3.142");
}

TEST(Table, PrintsAlignedColumns) {
  TablePrinter Table({"Name", "Value"});
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "22"});
  std::ostringstream Os;
  Table.print(Os);
  std::string Text = Os.str();
  EXPECT_NE(Text.find("Name"), std::string::npos);
  EXPECT_NE(Text.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Text.find("----"), std::string::npos);
}

} // namespace
