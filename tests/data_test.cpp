//===- tests/data_test.cpp - synthetic dataset substrate tests -----------------===//

#include "data/Acas.h"
#include "data/Corruptions.h"
#include "data/Digits.h"
#include "data/ShapeWorld.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace prdnn;
using namespace prdnn::data;

// --- Digits --------------------------------------------------------------------

TEST(Digits, ImagesAreWellFormed) {
  Rng R(1);
  for (int Digit = 0; Digit < kDigitClasses; ++Digit) {
    Vector Image = makeDigitImage(Digit, R);
    ASSERT_EQ(Image.size(), kDigitPixels);
    double Mass = 0.0;
    for (int I = 0; I < Image.size(); ++I) {
      EXPECT_GE(Image[I], 0.0);
      EXPECT_LE(Image[I], 1.0);
      Mass += Image[I];
    }
    // Some ink must be present.
    EXPECT_GT(Mass, 5.0);
  }
}

TEST(Digits, DatasetIsBalanced) {
  Rng R(2);
  Dataset Data = makeDigits(200, R);
  ASSERT_EQ(Data.size(), 200);
  int Counts[kDigitClasses] = {};
  for (int Label : Data.Labels)
    ++Counts[Label];
  for (int C : Counts)
    EXPECT_EQ(C, 20);
}

TEST(Digits, ClassifierLearnsHeldOutDigits) {
  Rng R(3);
  Network Net = trainDigitClassifier(/*Hidden=*/24, /*TrainCount=*/1500,
                                     /*Epochs=*/10, R);
  Rng TestR(999);
  Dataset Test = makeDigits(400, TestR);
  EXPECT_GE(accuracy(Net, Test.Inputs, Test.Labels), 0.9);
}

// --- Corruptions -----------------------------------------------------------------

TEST(Corruptions, FogZeroSeverityIsIdentity) {
  Rng R(4);
  Vector Image = makeDigitImage(3, R);
  Vector Fogged = fogCorrupt(Image, kDigitImage, kDigitImage, 0.0, R);
  EXPECT_LT(Fogged.maxAbsDiff(Image), 1e-12);
}

TEST(Corruptions, FogFullSeverityErasesTheSignal) {
  Rng R(5);
  Vector Image = makeDigitImage(3, R);
  Vector Fogged = fogCorrupt(Image, kDigitImage, kDigitImage, 1.0, R);
  // Fully fogged images are bright everywhere.
  for (int I = 0; I < Fogged.size(); ++I)
    EXPECT_GE(Fogged[I], 0.6);
}

TEST(Corruptions, FogDegradesClassifierAccuracy) {
  Rng R(6);
  Network Net = trainDigitClassifier(24, 1500, 10, R);
  Rng TestR(1000);
  Dataset Clean = makeDigits(300, TestR);
  Dataset Fogged;
  Rng FogR(7);
  for (int I = 0; I < Clean.size(); ++I)
    Fogged.push(fogCorrupt(Clean.Inputs[I], kDigitImage, kDigitImage,
                           FogR.uniform(0.6, 0.85), FogR),
                Clean.Labels[I]);
  double CleanAcc = accuracy(Net, Clean.Inputs, Clean.Labels);
  double FogAcc = accuracy(Net, Fogged.Inputs, Fogged.Labels);
  EXPECT_GE(CleanAcc, 0.9);
  EXPECT_LE(FogAcc, 0.55); // fog is a real distribution shift
}

TEST(Corruptions, ContrastAndNoiseStayInRange) {
  Rng R(8);
  Vector Image = makeDigitImage(5, R);
  for (const Vector &Out :
       {contrastCorrupt(Image, 0.3), contrastCorrupt(Image, 2.0),
        noiseCorrupt(Image, 0.5, R)})
    for (int I = 0; I < Out.size(); ++I) {
      EXPECT_GE(Out[I], 0.0);
      EXPECT_LE(Out[I], 1.0);
    }
}

TEST(Corruptions, OccludeBarZeroesABar) {
  Rng R(9);
  Vector Image = Vector::constant(3 * 16 * 16, 1.0);
  Vector Out = occludeBar(Image, 3, 16, 16, 3, R);
  int Zeroed = 0;
  for (int I = 0; I < Out.size(); ++I)
    if (Out[I] == 0.0)
      ++Zeroed;
  EXPECT_EQ(Zeroed, 3 * 16 * 3); // three channels, 16 x 3 bar
}

// --- ShapeWorld -----------------------------------------------------------------

TEST(ShapeWorld, ImagesAreWellFormed) {
  Rng R(10);
  for (int Shape = 0; Shape < kShapeClasses; ++Shape) {
    Vector Image = makeShapeImage(Shape, R);
    ASSERT_EQ(Image.size(), kShapePixels);
    for (int I = 0; I < Image.size(); ++I) {
      EXPECT_GE(Image[I], 0.0);
      EXPECT_LE(Image[I], 1.0);
    }
  }
}

TEST(ShapeWorld, ClassifierLearnsHeldOutShapes) {
  Rng R(11);
  Network Net = trainShapeClassifier(/*TrainCount=*/900, /*Epochs=*/6, R);
  Rng TestR(1001);
  Dataset Test = makeShapeWorld(270, TestR);
  EXPECT_GE(accuracy(Net, Test.Inputs, Test.Labels), 0.85);
}

TEST(ShapeWorld, AdversarialsAreMisclassifiedByConstruction) {
  Rng R(12);
  Network Net = trainShapeClassifier(600, 5, R);
  Rng AdvR(13);
  Dataset Adversarials = makeNaturalAdversarials(Net, 45, AdvR);
  ASSERT_EQ(Adversarials.size(), 45);
  // Every adversarial example is misclassified (accuracy 0), like NAE.
  EXPECT_DOUBLE_EQ(
      accuracy(Net, Adversarials.Inputs, Adversarials.Labels), 0.0);
  // And the labels cycle through all nine classes.
  int Counts[kShapeClasses] = {};
  for (int Label : Adversarials.Labels)
    ++Counts[Label];
  for (int C : Counts)
    EXPECT_EQ(C, 5);
}

// --- ACAS -----------------------------------------------------------------------

TEST(Acas, PolicyBasics) {
  // Far-away intruder: clear of conflict.
  Vector Far{0.9, 0.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(acasAdvisory(Far), AcasCoc);
  // On top of us, dead ahead, fast: strong turn.
  Vector Close{-0.95, 0.1, 0.0, 0.5, 0.9};
  int Advisory = acasAdvisory(Close);
  EXPECT_TRUE(Advisory == AcasStrongRight || Advisory == AcasStrongLeft);
  // Intruder slightly to the left (theta > 0), close: turn right.
  Vector Left{-0.5, 0.3, 0.0, 0.0, 0.5};
  int A2 = acasAdvisory(Left);
  EXPECT_TRUE(A2 == AcasWeakRight || A2 == AcasStrongRight);
  // Mirrored: turn left.
  Vector Right{-0.5, -0.3, 0.0, 0.0, 0.5};
  int A3 = acasAdvisory(Right);
  EXPECT_TRUE(A3 == AcasWeakLeft || A3 == AcasStrongLeft);
}

TEST(Acas, SafeRegionPolicyIsAlwaysCoc) {
  // The phi_8 analogue is sound for the ground-truth policy: everywhere
  // in the safe region, the policy commands COC.
  Rng R(14);
  for (int I = 0; I < 2000; ++I) {
    Vector X(kAcasInputs);
    X[0] = R.uniform(kAcasSafeRho, 1.0);
    for (int J = 1; J < kAcasInputs; ++J)
      X[J] = R.uniform(-1.0, 1.0);
    EXPECT_EQ(acasAdvisory(X), AcasCoc);
    EXPECT_LT(acasThreat(X), kAcasCocThreat);
  }
}

TEST(Acas, TrainedNetworkApproximatesThePolicy) {
  Rng R(15);
  Network Net = trainAcasNetwork(/*Hidden=*/16, /*TrainCount=*/4000,
                                 /*Epochs=*/12, R);
  Rng TestR(1002);
  Dataset Test = makeAcasDataset(1500, TestR);
  EXPECT_GE(accuracy(Net, Test.Inputs, Test.Labels), 0.85);
}

TEST(Acas, SafeSlicesStayInSafeRegion) {
  Rng R(16);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<Vector> Slice = randomSafeSlice(R);
    ASSERT_EQ(Slice.size(), 4u);
    for (const Vector &Corner : Slice) {
      EXPECT_GE(Corner[0], kAcasSafeRho);
      for (int J = 0; J < kAcasInputs; ++J) {
        EXPECT_GE(Corner[J], -1.0);
        EXPECT_LE(Corner[J], 1.0);
      }
    }
    // The four corners span a genuine 2-D rectangle.
    EXPECT_GT(Slice[0].maxAbsDiff(Slice[2]), 0.5);
  }
}

TEST(Acas, SafeAdvisoryPredicate) {
  EXPECT_TRUE(acasSafeAdvisory(AcasCoc));
  EXPECT_TRUE(acasSafeAdvisory(AcasWeakLeft));
  EXPECT_FALSE(acasSafeAdvisory(AcasWeakRight));
  EXPECT_FALSE(acasSafeAdvisory(AcasStrongLeft));
  EXPECT_FALSE(acasSafeAdvisory(AcasStrongRight));
}

} // namespace
