//===- tests/serve_test.cpp - fleet serving subsystem tests ------------------===//
//
// Covers the serve/ subsystem end to end: registry round-trips for
// every layer kind (fingerprint-verified load, bit-exact evaluation);
// typed degradation of the failure paths - unknown fingerprints,
// truncated/corrupt entries, and valid networks stored under foreign
// addresses are rejected and deleted, never served and never a crash;
// two registries racing publication of one model set on one shared
// directory; the registry's `.net` entries surviving the artifact
// store's LRU GC; admission control (saturation, per-class quotas,
// ticket release, snapshots); the engine's queue observability and
// completion hooks; and the RepairService front end - fingerprint-
// addressed submits whose reports are bit-for-bit identical to serial,
// cache-free runs, with typed rejects when the model is unknown or the
// process is saturated. Runs under the CI ThreadSanitizer job next to
// parallel_test, engine_test, cache_test, and persist_test.
//
//===----------------------------------------------------------------------===//

#include "serve/AdmissionController.h"
#include "serve/ModelRegistry.h"
#include "serve/RepairService.h"

#include "api/RepairEngine.h"
#include "cache/Fingerprint.h"
#include "core/PolytopeRepair.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "persist/ArtifactStore.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

namespace fs = std::filesystem;

namespace {

using namespace prdnn;
using namespace prdnn::serve;
using persist::ArtifactStore;
using persist::StoreOptions;

/// Unique directory under the system temp dir, removed on destruction.
struct TempDir {
  fs::path Path;

  explicit TempDir(const std::string &Tag) {
    static std::atomic<int> Counter{0};
    auto Stamp = std::chrono::steady_clock::now().time_since_epoch().count();
    Path = fs::temp_directory_path() /
           ("prdnn-" + Tag + "-" + std::to_string(Stamp) + "-" +
            std::to_string(Counter.fetch_add(1)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 6 -> 16 -> 16 -> 4 ReLU classifier; parameterized layers 0, 2, 4.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 6, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 16, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 16, 0.9), randomVector(R, 4, 0.3)));
  return Net;
}

/// One of every PWL layer kind the serializer knows.
Network makeEveryPwlLayerNetwork(Rng &R) {
  Network Net;
  // 2ch 4x4 input.
  Net.addLayer(std::make_unique<Conv2DLayer>(
      2, 4, 4, 3, 3, 3, 1, 1,
      [&] {
        std::vector<double> K(2 * 3 * 3 * 3);
        for (double &V : K)
          V = 0.3 * R.normal();
        return K;
      }(),
      std::vector<double>{0.1, -0.2, 0.05}));
  Net.addLayer(std::make_unique<ReLULayer>(3 * 4 * 4));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(3, 4, 4, 2, 2, 2));
  Net.addLayer(std::make_unique<AvgPool2DLayer>(3, 2, 2, 2, 2, 2));
  Net.addLayer(std::make_unique<FlattenLayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 5, 3, 0.8), randomVector(R, 5, 0.2)));
  Net.addLayer(std::make_unique<LeakyReLULayer>(5, 0.01));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 5, 0.8), randomVector(R, 4, 0.2)));
  Net.addLayer(std::make_unique<HardTanhLayer>(4));
  return Net;
}

Network makeSmoothNetwork(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 3, 2, 0.9), randomVector(R, 3, 0.1)));
  Net.addLayer(std::make_unique<TanhLayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 2, 3, 0.9), randomVector(R, 2, 0.1)));
  Net.addLayer(std::make_unique<SigmoidLayer>(2));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

void expectBitIdentical(const RepairResult &A, const RepairResult &B) {
  ASSERT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.Delta.size(), B.Delta.size());
  for (size_t I = 0; I < A.Delta.size(); ++I)
    EXPECT_EQ(A.Delta[I], B.Delta[I]) << "Delta[" << I << "]";
  EXPECT_EQ(A.DeltaL1, B.DeltaL1);
  EXPECT_EQ(A.DeltaLInf, B.DeltaLInf);
}

// --- ModelRegistry ----------------------------------------------------------

TEST(ModelRegistry, RoundTripEveryLayerKind) {
  TempDir Dir("registry-roundtrip");
  ModelRegistry Registry(Dir.str());

  Rng R(8101);
  std::vector<Network> Nets;
  Nets.push_back(makeEveryPwlLayerNetwork(R));
  Nets.push_back(makeSmoothNetwork(R));
  Nets.push_back(makeClassifier(R));

  std::vector<NetworkFingerprint> Fps;
  for (const Network &Net : Nets) {
    RegistryError Error = RegistryError::IoError;
    Fps.push_back(Registry.publish(Net, &Error));
    EXPECT_EQ(Error, RegistryError::None);
    EXPECT_TRUE(Registry.contains(Fps.back()));
    EXPECT_TRUE(fs::exists(Registry.entryPath(Fps.back())));
  }
  EXPECT_EQ(Registry.list().size(), Nets.size());

  // Force the disk path: the cache publish seeded must not mask a
  // broken serializer.
  Registry.dropCache();
  for (size_t I = 0; I < Nets.size(); ++I) {
    RegistryError Error = RegistryError::IoError;
    std::shared_ptr<const Network> Back = Registry.resolve(Fps[I], &Error);
    ASSERT_NE(Back, nullptr) << toString(Error);
    EXPECT_EQ(Error, RegistryError::None);
    // Fingerprint equality is bit-exactness of topology + parameters.
    EXPECT_EQ(fingerprintNetwork(*Back), Fps[I]);
    Rng ProbeR(9000 + static_cast<int>(I));
    Vector X = randomVector(ProbeR, Nets[I].inputSize());
    Vector Want = Nets[I].evaluate(X);
    Vector Got = Back->evaluate(X);
    for (int O = 0; O < Want.size(); ++O)
      EXPECT_EQ(Got[O], Want[O]);
  }

  RegistryStats Stats = Registry.stats();
  EXPECT_EQ(Stats.Publishes, Nets.size());
  EXPECT_EQ(Stats.DiskLoads, Nets.size());
  EXPECT_EQ(Stats.CorruptRejects, 0u);
  EXPECT_EQ(Stats.MismatchRejects, 0u);

  // Second resolve of each: per-process cache, no disk.
  for (const NetworkFingerprint &Fp : Fps)
    EXPECT_NE(Registry.resolve(Fp), nullptr);
  EXPECT_EQ(Registry.stats().CacheHits, Nets.size());
  EXPECT_EQ(Registry.stats().DiskLoads, Nets.size());
}

TEST(ModelRegistry, PublishIsIdempotent) {
  TempDir Dir("registry-idem");
  ModelRegistry Registry(Dir.str());
  Rng R(8102);
  Network Net = makeClassifier(R);

  NetworkFingerprint First = Registry.publish(Net);
  NetworkFingerprint Second = Registry.publish(Net);
  EXPECT_EQ(First, Second);
  RegistryStats Stats = Registry.stats();
  EXPECT_EQ(Stats.Publishes, 1u);
  EXPECT_EQ(Stats.PublishSkips, 1u);
  EXPECT_EQ(Registry.list().size(), 1u);
}

TEST(ModelRegistry, UnknownFingerprintIsTypedNotFound) {
  TempDir Dir("registry-notfound");
  ModelRegistry Registry(Dir.str());
  NetworkFingerprint Fp;
  Fp.Digest.Hi = 0x1234;
  Fp.Digest.Lo = 0x5678;
  RegistryError Error = RegistryError::None;
  EXPECT_EQ(Registry.resolve(Fp, &Error), nullptr);
  EXPECT_EQ(Error, RegistryError::NotFound);
  EXPECT_FALSE(Registry.contains(Fp));
  EXPECT_EQ(Registry.stats().NotFound, 1u);
}

TEST(ModelRegistry, CorruptEntryRejectedDeletedAndHealable) {
  TempDir Dir("registry-corrupt");
  ModelRegistry Registry(Dir.str());
  Rng R(8103);
  Network Net = makeClassifier(R);
  NetworkFingerprint Fp = Registry.publish(Net);
  const std::string Path = Registry.entryPath(Fp);

  // Truncate to half: the frame check must reject it, typed.
  fs::resize_file(Path, fs::file_size(Path) / 2);
  Registry.dropCache();
  RegistryError Error = RegistryError::None;
  EXPECT_EQ(Registry.resolve(Fp, &Error), nullptr);
  EXPECT_EQ(Error, RegistryError::Corrupt);
  EXPECT_FALSE(fs::exists(Path)) << "corrupt entry must be deleted";
  EXPECT_EQ(Registry.stats().CorruptRejects, 1u);

  // Garbage bytes likewise (a fresh fake entry, not a torn frame).
  {
    std::ofstream Os(Path, std::ios::binary);
    Os << "these are not the bytes you are looking for";
  }
  EXPECT_EQ(Registry.resolve(Fp, &Error), nullptr);
  EXPECT_EQ(Error, RegistryError::Corrupt);
  EXPECT_FALSE(fs::exists(Path));

  // Republish heals: the same address serves again.
  Registry.publish(Net);
  Registry.dropCache();
  std::shared_ptr<const Network> Back = Registry.resolve(Fp, &Error);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Error, RegistryError::None);
  EXPECT_EQ(fingerprintNetwork(*Back), Fp);
}

TEST(ModelRegistry, ForeignAddressRejectedAndDeleted) {
  TempDir Dir("registry-mismatch");
  ModelRegistry Registry(Dir.str());
  Rng R(8104);
  Network Net = makeClassifier(R);
  NetworkFingerprint Fp = Registry.publish(Net);

  // A valid frame under the wrong address: decodes fine, but the
  // recomputed fingerprint cannot match - never served.
  NetworkFingerprint Bogus = Fp;
  Bogus.Digest.Lo ^= 0xff;
  fs::copy_file(Registry.entryPath(Fp), Registry.entryPath(Bogus));

  RegistryError Error = RegistryError::None;
  EXPECT_EQ(Registry.resolve(Bogus, &Error), nullptr);
  EXPECT_EQ(Error, RegistryError::FingerprintMismatch);
  EXPECT_FALSE(fs::exists(Registry.entryPath(Bogus)));
  EXPECT_EQ(Registry.stats().MismatchRejects, 1u);

  // The real entry is untouched.
  Registry.dropCache();
  EXPECT_NE(Registry.resolve(Fp), nullptr);
}

TEST(ModelRegistry, TwoRegistriesRacePublicationOnOneDirectory) {
  TempDir Dir("registry-race");
  // Two registries = two serving processes sharing one directory.
  ModelRegistry A(Dir.str());
  ModelRegistry B(Dir.str());

  std::vector<Network> Nets;
  Rng R(8105);
  for (int I = 0; I < 4; ++I)
    Nets.push_back(makeClassifier(R));

  const int ThreadsPerSide = 3;
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadsPerSide; ++T) {
    for (ModelRegistry *Side : {&A, &B}) {
      Threads.emplace_back([Side, &Nets] {
        for (const Network &Net : Nets) {
          RegistryError Error = RegistryError::None;
          NetworkFingerprint Fp = Side->publish(Net, &Error);
          EXPECT_EQ(Error, RegistryError::None);
          RegistryError ResolveError = RegistryError::None;
          std::shared_ptr<const Network> Got =
              Side->resolve(Fp, &ResolveError);
          EXPECT_NE(Got, nullptr) << toString(ResolveError);
        }
      });
    }
  }
  for (std::thread &Thread : Threads)
    Thread.join();

  // Exactly one entry per distinct model, whoever won each race; no
  // temp files left behind.
  EXPECT_EQ(A.list().size(), Nets.size());
  int Files = 0;
  for (const auto &Entry : fs::directory_iterator(A.directory()))
    Files += Entry.is_regular_file();
  EXPECT_EQ(Files, static_cast<int>(Nets.size()));

  // Cross-side visibility: B resolves what A published and vice versa.
  A.dropCache();
  B.dropCache();
  for (const Network &Net : Nets) {
    NetworkFingerprint Fp = fingerprintNetwork(Net);
    EXPECT_NE(A.resolve(Fp), nullptr);
    EXPECT_NE(B.resolve(Fp), nullptr);
  }
}

TEST(ModelRegistry, ModelEntriesSurviveArtifactStoreGc) {
  TempDir Dir("registry-gc");
  ModelRegistry Registry(Dir.str());
  Rng R(8106);
  Network Net = makeClassifier(R);
  NetworkFingerprint Fp = Registry.publish(Net);
  const std::uint64_t ModelBytes = fs::file_size(Registry.entryPath(Fp));
  ASSERT_GT(ModelBytes, 0u);

  // An artifact store on the same directory whose LRU GC must run:
  // `.art` entries get evicted, `models/` must not be touched -
  // registry entries are roots, not cache lines.
  auto Artifact = std::make_shared<JacobianRowsArtifact>();
  Artifact->Coef.assign(8, std::vector<double>(64, 1.25));
  Artifact->Hi.assign(8, 2.5);
  auto KeyOf = [](std::uint64_t K) {
    Hasher H;
    H.u64(K);
    return CacheKey{ArtifactKind::JacobianRows, H.digest()};
  };
  std::uint64_t EntryBytes = 0;
  {
    StoreOptions Roomy;
    Roomy.Directory = Dir.str();
    ArtifactStore Store(Roomy);
    for (std::uint64_t K = 0; K < 6; ++K)
      Store.storeSync(KeyOf(K), *Artifact);
    EntryBytes = Store.stats().BytesHeld / 6;
  }
  ASSERT_GT(EntryBytes, 0u);

  StoreOptions Tight;
  Tight.Directory = Dir.str();
  // Room for two-and-a-half entries: the six on disk must shrink.
  Tight.BudgetBytes = EntryBytes * 2 + EntryBytes / 2;
  ArtifactStore Store(Tight);
  Store.storeSync(KeyOf(6), *Artifact); // trigger a GC pass
  EXPECT_GT(Store.stats().Evictions, 0u);

  // The model is still there and still resolves, bit-exactly.
  EXPECT_TRUE(fs::exists(Registry.entryPath(Fp)));
  Registry.dropCache();
  std::shared_ptr<const Network> Back = Registry.resolve(Fp);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(fingerprintNetwork(*Back), Fp);
}

// --- AdmissionController ----------------------------------------------------

TEST(AdmissionController, SaturationAndQuotaAreTypedAndReleasable) {
  AdmissionOptions Options;
  Options.MaxInFlight = 3;
  Options.ClassQuota[static_cast<int>(RepairRequest::Priority::Low)] = 1;
  AdmissionController Admission(Options);

  AdmitReject Why = AdmitReject::None;
  std::uint64_t High = Admission.tryAdmit(RepairRequest::Priority::High);
  std::uint64_t Low = Admission.tryAdmit(RepairRequest::Priority::Low);
  EXPECT_NE(High, 0u);
  EXPECT_NE(Low, 0u);

  // Low is at quota while a total slot remains.
  EXPECT_EQ(Admission.tryAdmit(RepairRequest::Priority::Low, &Why), 0u);
  EXPECT_EQ(Why, AdmitReject::ClassQuota);

  std::uint64_t Neutral =
      Admission.tryAdmit(RepairRequest::Priority::Neutral);
  EXPECT_NE(Neutral, 0u);
  EXPECT_EQ(Admission.tryAdmit(RepairRequest::Priority::High, &Why), 0u);
  EXPECT_EQ(Why, AdmitReject::Saturated);

  AdmissionSnapshot Snap = Admission.queueStats();
  EXPECT_EQ(Snap.Depth, 3);
  EXPECT_EQ(Snap.ByClass[static_cast<int>(RepairRequest::Priority::High)],
            1);
  EXPECT_EQ(Snap.ByClass[static_cast<int>(RepairRequest::Priority::Low)], 1);
  EXPECT_EQ(Snap.Admitted, 3u);
  EXPECT_EQ(Snap.SaturatedRejects, 1u);
  EXPECT_EQ(Snap.QuotaRejects, 1u);
  EXPECT_GE(Snap.OldestWaitSeconds, 0.0);

  // Release reopens exactly the released capacity; double-release is
  // a no-op (tickets release once).
  Admission.release(Low);
  Admission.release(Low);
  EXPECT_EQ(Admission.queueStats().Depth, 2);
  EXPECT_NE(Admission.tryAdmit(RepairRequest::Priority::Low), 0u);
  EXPECT_EQ(Admission.tryAdmit(RepairRequest::Priority::Neutral, &Why), 0u);
  EXPECT_EQ(Why, AdmitReject::Saturated);

  // Unknown tickets are ignored.
  Admission.release(99999);
  EXPECT_EQ(Admission.queueStats().Depth, 3);
}

TEST(AdmissionController, OldestWaitTracksTheOldestTicket) {
  AdmissionController Admission(AdmissionOptions{});
  std::uint64_t First = Admission.tryAdmit(RepairRequest::Priority::Neutral);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::uint64_t Second =
      Admission.tryAdmit(RepairRequest::Priority::Neutral);
  double Both = Admission.queueStats().OldestWaitSeconds;
  EXPECT_GE(Both, 0.015);
  // Releasing the oldest moves the clock to the younger ticket.
  Admission.release(First);
  EXPECT_LT(Admission.queueStats().OldestWaitSeconds, Both);
  Admission.release(Second);
  EXPECT_EQ(Admission.queueStats().OldestWaitSeconds, 0.0);
  EXPECT_EQ(Admission.queueStats().Depth, 0);
}

// --- Engine queue observability and completion hooks ------------------------

TEST(RepairEngine, QueueStatsObserveDepthClassesAndOldestWait) {
  Rng R(8107);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  Rng SpecR(8108);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  EngineOptions Options;
  Options.NumWorkers = 1;
  Options.QueueCapacity = 8;
  RepairEngine Engine(Options);

  EngineQueueStats Idle = Engine.queueStats();
  EXPECT_EQ(Idle.Depth, 0);
  EXPECT_EQ(Idle.Running, 0);
  EXPECT_EQ(Idle.OldestWaitSeconds, 0.0);

  // Park the single worker inside a blocker job, then pile up one job
  // per priority class behind it.
  std::promise<void> Entered, Release;
  std::shared_future<void> ReleaseF = Release.get_future().share();
  std::atomic<bool> EnteredOnce{false};
  JobHandle Blocker = Engine.submit(
      RepairRequest::points(Net, 4, Spec), [&](RepairPhase) {
        if (!EnteredOnce.exchange(true)) {
          Entered.set_value();
          ReleaseF.wait();
        }
      });
  Entered.get_future().wait();

  auto Queued = [&](RepairRequest::Priority Class) {
    RepairRequest Request = RepairRequest::points(Net, 2, Spec);
    Request.JobPriority = Class;
    return Engine.submit(std::move(Request));
  };
  JobHandle LowJob = Queued(RepairRequest::Priority::Low);
  JobHandle HighJob = Queued(RepairRequest::Priority::High);
  JobHandle NeutralJob = Queued(RepairRequest::Priority::Neutral);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));

  EngineQueueStats Stats = Engine.queueStats();
  EXPECT_EQ(Stats.Depth, 3);
  EXPECT_EQ(Stats.Running, 1);
  EXPECT_EQ(
      Stats.QueuedByClass[static_cast<int>(RepairRequest::Priority::High)],
      1);
  EXPECT_EQ(Stats.QueuedByClass[static_cast<int>(
                RepairRequest::Priority::Neutral)],
            1);
  EXPECT_EQ(
      Stats.QueuedByClass[static_cast<int>(RepairRequest::Priority::Low)],
      1);
  EXPECT_GE(Stats.OldestWaitSeconds, 0.010);

  Release.set_value();
  for (JobHandle *Handle : {&Blocker, &LowJob, &HighJob, &NeutralJob})
    EXPECT_EQ(Handle->report().Status, RepairStatus::Success);
  EngineQueueStats Drained = Engine.queueStats();
  EXPECT_EQ(Drained.Depth, 0);
  EXPECT_EQ(Drained.Running, 0);
}

TEST(RepairEngine, CompletionHookRunsExactlyOnceIncludingCancellation) {
  Rng R(8109);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  Rng SpecR(8110);
  PointSpec Spec = makeFlipSpec(*Net, SpecR, 8);

  std::atomic<int> Completions{0};
  std::atomic<int> CancelledCompletions{0};
  auto Hook = [&](const RepairReport &Report) {
    Completions.fetch_add(1, std::memory_order_relaxed);
    if (Report.Status == RepairStatus::Cancelled)
      CancelledCompletions.fetch_add(1, std::memory_order_relaxed);
  };

  {
    EngineOptions Options;
    Options.NumWorkers = 1;
    Options.QueueCapacity = 8;

    // Declared before the engine: teardown may race the worker still
    // inside ReleaseF.wait(), so these must be destroyed only after
    // ~RepairEngine joins it.
    std::promise<void> Entered, Release;
    std::shared_future<void> ReleaseF = Release.get_future().share();
    std::atomic<bool> EnteredOnce{false};

    RepairEngine Engine(Options);

    // Executed jobs: hook fires on the worker by the time report()
    // returns.
    JobHandle Done = Engine.submit(RepairRequest::points(Net, 0, Spec),
                                   {}, Hook);
    EXPECT_EQ(Done.report().Status, RepairStatus::Success);
    EXPECT_EQ(Completions.load(), 1);

    // A parked worker + queued jobs, then teardown: the queued jobs
    // resolve as Cancelled and their hooks still fire exactly once.
    Engine.submit(
        RepairRequest::points(Net, 4, Spec),
        [&](RepairPhase) {
          if (!EnteredOnce.exchange(true)) {
            Entered.set_value();
            ReleaseF.wait();
          }
        },
        Hook);
    Entered.get_future().wait();
    Engine.submit(RepairRequest::points(Net, 2, Spec), {}, Hook);
    Engine.submit(RepairRequest::points(Net, 2, Spec), {}, Hook);
    Release.set_value();
  } // ~RepairEngine cancels whatever is still queued

  EXPECT_EQ(Completions.load(), 4);
  EXPECT_EQ(Completions.load() - CancelledCompletions.load() >= 2, true)
      << "the blocker and the first job completed";
}

// --- RepairService ----------------------------------------------------------

TEST(RepairService, FingerprintAddressedServingIsBitIdentical) {
  TempDir Dir("service-e2e");
  Rng R(8111);
  Network Classifier = makeClassifier(R);

  ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  Options.Engine.NumWorkers = 2;
  Options.Admission.MaxInFlight = 8;
  RepairService Service(Options);

  NetworkFingerprint Fp = Service.registry().publish(Classifier);

  // Serial, cache-free ground truth.
  EngineOptions SerialOptions;
  SerialOptions.EnableCache = false;
  RepairEngine SerialEngine(SerialOptions);

  struct Case {
    int Layer;
    int Seed;
  };
  const Case Cases[] = {{0, 1}, {2, 2}, {4, 3}, {kAutoLayer, 4}};
  std::vector<RepairReport> Twins;
  std::vector<JobHandle> Handles;
  for (const Case &C : Cases) {
    Rng SpecR(9100 + C.Seed);
    PointSpec Spec = makeFlipSpec(Classifier, SpecR, 10);

    RepairRequest Twin;
    Twin.Net = RepairRequest::borrow(Classifier);
    Twin.Spec = Spec;
    Twin.LayerIndex = C.Layer;
    Twins.push_back(SerialEngine.run(Twin));

    ServeRequest Request;
    Request.Model = Fp;
    Request.Spec = std::move(Spec);
    Request.LayerIndex = C.Layer;
    ServeSubmission Submission = Service.submit(Request);
    ASSERT_TRUE(Submission.accepted()) << toString(Submission.Reject);
    Handles.push_back(Submission.Handle);
  }

  for (size_t I = 0; I < Handles.size(); ++I) {
    const RepairReport &Report = Handles[I].report();
    EXPECT_EQ(Report.Status, Twins[I].Status);
    EXPECT_EQ(Report.RepairedLayer, Twins[I].RepairedLayer);
    expectBitIdentical(Report.Result, Twins[I].Result);
  }

  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Accepted, Handles.size());
  EXPECT_EQ(Stats.Rejected, 0u);
  // All admission tickets were released by the completion hooks.
  EXPECT_EQ(Service.queueStats().Admission.Depth, 0);
}

TEST(RepairService, TypedRejectsForUnknownAndMismatchedModels) {
  TempDir Dir("service-rejects");
  Rng R(8112);
  Network Classifier = makeClassifier(R);

  ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  RepairService Service(Options);
  NetworkFingerprint Fp = Service.registry().publish(Classifier);

  Rng SpecR(9200);
  PointSpec Spec = makeFlipSpec(Classifier, SpecR, 6);

  ServeRequest Unknown;
  Unknown.Model.Digest.Hi = 0xabc;
  Unknown.Model.Digest.Lo = 0xdef;
  Unknown.Spec = Spec;
  Unknown.LayerIndex = 0;
  ServeSubmission UnknownSub = Service.submit(Unknown);
  EXPECT_EQ(UnknownSub.Reject, ServeReject::UnknownModel);
  EXPECT_FALSE(UnknownSub.Handle.valid());

  // A valid model file under a foreign address: the service must
  // reject with the mismatch reason, not serve the wrong network.
  NetworkFingerprint Bogus = Fp;
  Bogus.Digest.Hi ^= 0x77;
  fs::copy_file(Service.registry().entryPath(Fp),
                Service.registry().entryPath(Bogus));
  ServeRequest Mismatched;
  Mismatched.Model = Bogus;
  Mismatched.Spec = Spec;
  Mismatched.LayerIndex = 0;
  ServeSubmission MismatchSub = Service.submit(Mismatched);
  EXPECT_EQ(MismatchSub.Reject, ServeReject::ModelMismatch);

  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Rejected, 2u);
  EXPECT_EQ(Stats.RejectsByReason[static_cast<int>(
                ServeReject::UnknownModel)],
            1u);
  EXPECT_EQ(Stats.RejectsByReason[static_cast<int>(
                ServeReject::ModelMismatch)],
            1u);
  // Rejected submissions must not leak admission slots.
  EXPECT_EQ(Service.queueStats().Admission.Depth, 0);
}

TEST(RepairService, SaturationShedsLoadWithTypedRejects) {
  TempDir Dir("service-saturate");
  Rng R(8113);
  Network Classifier = makeClassifier(R);

  ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  Options.Engine.NumWorkers = 1;
  Options.Admission.MaxInFlight = 1;
  RepairService Service(Options);
  NetworkFingerprint Fp = Service.registry().publish(Classifier);

  Rng SpecR(9300);
  PointSpec Spec = makeFlipSpec(Classifier, SpecR, 8);
  ServeRequest Request;
  Request.Model = Fp;
  Request.Spec = Spec;
  Request.LayerIndex = 0;

  // A tight submit loop against MaxInFlight=1 must shed load: retry
  // rejected submits (the designed client behavior) until all jobs are
  // in, and require that saturation was actually observed.
  const int Jobs = 12;
  std::vector<JobHandle> Handles;
  std::uint64_t SaturatedRejects = 0;
  while (static_cast<int>(Handles.size()) < Jobs) {
    ServeSubmission Submission = Service.submit(Request);
    if (Submission.accepted()) {
      Handles.push_back(Submission.Handle);
      continue;
    }
    ASSERT_EQ(Submission.Reject, ServeReject::Saturated);
    ++SaturatedRejects;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (JobHandle &Handle : Handles)
    EXPECT_EQ(Handle.report().Status, RepairStatus::Success);
  EXPECT_GT(SaturatedRejects, 0u);
  EXPECT_EQ(Service.stats().Accepted, static_cast<std::uint64_t>(Jobs));
  EXPECT_EQ(Service.queueStats().Admission.Depth, 0);
}

TEST(RepairService, StatsAggregateEveryTierAndCountersMove) {
  TempDir Dir("service-stats");
  Rng R(8115);
  Network Classifier = makeClassifier(R);

  ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  Options.Engine.NumWorkers = 2;
  RepairService Service(Options);

  // Idle snapshot: everything zero.
  ServiceStats Before = Service.stats();
  EXPECT_EQ(Before.Accepted, 0u);
  EXPECT_EQ(Before.Rejected, 0u);
  EXPECT_EQ(Before.Registry.Resolves, 0u);
  EXPECT_EQ(Before.Admission.Admitted, 0u);
  EXPECT_EQ(Before.Engine.Depth, 0);

  NetworkFingerprint Fp = Service.registry().publish(Classifier);
  Rng SpecR(9450);
  PointSpec Spec = makeFlipSpec(Classifier, SpecR, 6);

  // One accepted job and one typed reject move every tier's counters
  // through the single aggregated snapshot.
  ServeRequest Good;
  Good.Model = Fp;
  Good.Spec = Spec;
  Good.LayerIndex = 0;
  ServeSubmission Accepted = Service.submit(Good);
  ASSERT_TRUE(Accepted.accepted());
  EXPECT_EQ(Accepted.Handle.report().Status, RepairStatus::Success);

  ServeRequest Bad;
  Bad.Model.Digest.Hi = 0x1;
  Bad.Spec = std::move(Spec);
  Bad.LayerIndex = 0;
  ServeSubmission Rejected = Service.submit(Bad);
  EXPECT_EQ(Rejected.Reject, ServeReject::UnknownModel);

  ServiceStats After = Service.stats();
  EXPECT_EQ(After.Accepted, 1u);
  EXPECT_EQ(After.Rejected, 1u);
  EXPECT_EQ(
      After.RejectsByReason[static_cast<int>(ServeReject::UnknownModel)],
      1u);
  EXPECT_EQ(After.Registry.Publishes, 1u);
  // The accepted job resolved the model; the reject probed and missed.
  EXPECT_EQ(After.Registry.Resolves, 2u);
  EXPECT_EQ(After.Registry.NotFound, 1u);
  // Admission grants a ticket before registry resolution, so the
  // UnknownModel probe also admitted (then released) one.
  EXPECT_EQ(After.Admission.Admitted, 2u);
  EXPECT_EQ(After.Admission.Depth, 0);
  EXPECT_EQ(After.Engine.Depth, 0);
  EXPECT_EQ(After.Engine.Running, 0);
  // The engine ran with its cache on: lookups moved through the
  // aggregate too.
  EXPECT_GT(After.Cache.Hits + After.Cache.Misses, 0u);
}

TEST(RepairService, TwoServicesShareOneDirectory) {
  TempDir Dir("service-pair");
  Rng R(8114);
  Network Classifier = makeClassifier(R);

  ServiceOptions Options;
  Options.StoreDirectory = Dir.str();
  RepairService A(Options);
  RepairService B(Options);

  // A publishes; B serves by fingerprint alone, loading (and
  // re-verifying) off the shared disk.
  NetworkFingerprint Fp = A.registry().publish(Classifier);
  Rng SpecR(9400);
  PointSpec Spec = makeFlipSpec(Classifier, SpecR, 8);

  RepairRequest Twin;
  Twin.Net = RepairRequest::borrow(Classifier);
  Twin.Spec = Spec;
  Twin.LayerIndex = 2;
  EngineOptions SerialOptions;
  SerialOptions.EnableCache = false;
  RepairEngine SerialEngine(SerialOptions);
  RepairReport TwinReport = SerialEngine.run(Twin);

  ServeRequest Request;
  Request.Model = Fp;
  Request.Spec = std::move(Spec);
  Request.LayerIndex = 2;
  ServeSubmission Submission = B.submit(Request);
  ASSERT_TRUE(Submission.accepted()) << toString(Submission.Reject);
  const RepairReport &Report = Submission.Handle.report();
  expectBitIdentical(Report.Result, TwinReport.Result);
  EXPECT_EQ(B.registry().stats().DiskLoads, 1u);
}

} // namespace
