//===- tests/linalg_test.cpp - Vector/Matrix tests --------------------------===//

#include "linalg/Matrix.h"
#include "linalg/Vector.h"

#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

namespace {

using namespace prdnn;

TEST(Vector, BasicOps) {
  Vector A{1.0, 2.0, 3.0};
  Vector B{4.0, -1.0, 0.5};
  Vector Sum = A + B;
  EXPECT_DOUBLE_EQ(Sum[0], 5.0);
  EXPECT_DOUBLE_EQ(Sum[1], 1.0);
  EXPECT_DOUBLE_EQ(Sum[2], 3.5);
  Vector Diff = A - B;
  EXPECT_DOUBLE_EQ(Diff[0], -3.0);
  Vector Scaled = A * 2.0;
  EXPECT_DOUBLE_EQ(Scaled[2], 6.0);
  EXPECT_DOUBLE_EQ(A.dot(B), 4.0 - 2.0 + 1.5);
}

TEST(Vector, Norms) {
  Vector V{3.0, -4.0, 0.0};
  EXPECT_DOUBLE_EQ(V.norm1(), 7.0);
  EXPECT_DOUBLE_EQ(V.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(V.normInf(), 4.0);
}

TEST(Vector, ArgmaxFirstOfTies) {
  Vector V{1.0, 5.0, 5.0, 2.0};
  EXPECT_EQ(V.argmax(), 1);
}

TEST(Vector, ConstantAndMaxAbsDiff) {
  Vector C = Vector::constant(4, 2.5);
  EXPECT_EQ(C.size(), 4);
  EXPECT_DOUBLE_EQ(C[3], 2.5);
  Vector D = Vector::constant(4, 2.0);
  EXPECT_DOUBLE_EQ(C.maxAbsDiff(D), 0.5);
}

TEST(Matrix, IdentityApply) {
  Matrix I = Matrix::identity(3);
  Vector X{1.0, -2.0, 3.0};
  Vector Y = I.apply(X);
  EXPECT_DOUBLE_EQ(Y.maxAbsDiff(X), 0.0);
}

TEST(Matrix, FromRowsAndApply) {
  Matrix A = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(A.rows(), 3);
  EXPECT_EQ(A.cols(), 2);
  Vector X{1.0, 1.0};
  Vector Y = A.apply(X);
  EXPECT_DOUBLE_EQ(Y[0], 3.0);
  EXPECT_DOUBLE_EQ(Y[1], 7.0);
  EXPECT_DOUBLE_EQ(Y[2], 11.0);
}

TEST(Matrix, TransposedApplyMatchesTranspose) {
  Rng R(3);
  Matrix A(4, 6);
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 6; ++J)
      A(I, J) = R.normal();
  Vector X(4);
  for (int I = 0; I < 4; ++I)
    X[I] = R.normal();
  Vector Via = A.applyTransposed(X);
  Vector Direct = A.transposed().apply(X);
  EXPECT_LT(Via.maxAbsDiff(Direct), 1e-12);
}

TEST(Matrix, MultiplyAgainstManual) {
  Matrix A = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix B = Matrix::fromRows({{0.0, 1.0}, {1.0, 0.0}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(C(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(C(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(C(1, 1), 3.0);
}

TEST(Matrix, MultiplyAssociatesWithApply) {
  Rng R(17);
  Matrix A(3, 5), B(5, 4);
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 5; ++J)
      A(I, J) = R.normal();
  for (int I = 0; I < 5; ++I)
    for (int J = 0; J < 4; ++J)
      B(I, J) = R.normal();
  Vector X(4);
  for (int I = 0; I < 4; ++I)
    X[I] = R.normal();
  Vector Left = A.multiply(B).apply(X);
  Vector Right = A.apply(B.apply(X));
  EXPECT_LT(Left.maxAbsDiff(Right), 1e-12);
}

TEST(Matrix, MultiplyTransposedMatchesMultiply) {
  Rng R(23);
  Matrix A(6, 9), B(7, 9);
  for (int I = 0; I < 6; ++I)
    for (int J = 0; J < 9; ++J)
      A(I, J) = R.normal();
  for (int I = 0; I < 7; ++I)
    for (int J = 0; J < 9; ++J)
      B(I, J) = R.normal();
  Matrix Via = A.multiplyTransposed(B);
  Matrix Direct = A.multiply(B.transposed());
  EXPECT_LT(Via.maxAbsDiff(Direct), 1e-12);
}

TEST(Matrix, LargeMultiplyMatchesNaiveAcrossThreadCounts) {
  // Sizes above the parallel/blocking thresholds: the blocked kernel
  // must agree with the naive triple loop bit-for-bit on any pool size.
  Rng R(29);
  const int N = 70, K = 300, M = 60;
  Matrix A(N, K), B(K, M);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < K; ++J)
      A(I, J) = R.normal();
  for (int I = 0; I < K; ++I)
    for (int J = 0; J < M; ++J)
      B(I, J) = R.normal();
  Matrix Naive(N, M);
  for (int I = 0; I < N; ++I)
    for (int Kk = 0; Kk < K; ++Kk) {
      double Scale = A(I, Kk);
      if (Scale == 0.0)
        continue;
      for (int J = 0; J < M; ++J)
        Naive(I, J) += Scale * B(Kk, J);
    }
  for (int Threads : {1, 4}) {
    setGlobalThreadCount(Threads);
    Matrix C = A.multiply(B);
    EXPECT_EQ(C.maxAbsDiff(Naive), 0.0) << Threads << " threads";
  }
  setGlobalThreadCount(1);
}

TEST(Matrix, RowHelpersAndFromRowVectors) {
  std::vector<Vector> Rows = {Vector{1.0, 2.0}, Vector{3.0, 4.0},
                              Vector{5.0, 6.0}};
  Matrix M = Matrix::fromRowVectors(Rows);
  EXPECT_EQ(M.rows(), 3);
  EXPECT_EQ(M.cols(), 2);
  EXPECT_DOUBLE_EQ(M(2, 1), 6.0);
  EXPECT_EQ(M.row(1).maxAbsDiff(Vector{3.0, 4.0}), 0.0);
  M.setRow(0, Vector{-1.0, -2.0});
  EXPECT_DOUBLE_EQ(M(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(M(0, 1), -2.0);
}

TEST(Matrix, NormInfAndAccumulate) {
  Matrix A = Matrix::fromRows({{1.0, -7.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(A.normInf(), 7.0);
  Matrix B = Matrix::fromRows({{1.0, 1.0}, {1.0, 1.0}});
  A += B;
  EXPECT_DOUBLE_EQ(A(0, 0), 2.0);
  A *= 0.5;
  EXPECT_DOUBLE_EQ(A(1, 1), 2.5);
}

} // namespace
