//===- tests/parallel_test.cpp - thread pool / parallelFor tests ------------===//
//
// Covers: full index coverage (each index exactly once) under various
// thread counts and grains, chunk ordering/disjointness guarantees of
// parallelForRanges, exception propagation with pool reuse afterwards,
// nested parallelFor, the PRDNN_NUM_THREADS override, and global pool
// resizing.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace prdnn;

TEST(Parallel, EveryIndexExactlyOnce) {
  for (int Threads : {1, 2, 4, 7}) {
    ThreadPool Pool(Threads);
    const std::int64_t N = 10007;
    std::vector<std::atomic<int>> Hits(N);
    for (auto &H : Hits)
      H.store(0);
    Pool.forRanges(0, N, /*Grain=*/0,
                   [&](std::int64_t Begin, std::int64_t End) {
                     for (std::int64_t I = Begin; I < End; ++I)
                       Hits[static_cast<size_t>(I)].fetch_add(1);
                   });
    for (std::int64_t I = 0; I < N; ++I)
      ASSERT_EQ(Hits[static_cast<size_t>(I)].load(), 1)
          << "index " << I << " with " << Threads << " threads";
  }
}

TEST(Parallel, ChunksAreGrainAlignedAndDisjoint) {
  ThreadPool Pool(4);
  const std::int64_t N = 1000, Grain = 64;
  std::vector<std::atomic<int>> ChunkSeen((N + Grain - 1) / Grain);
  for (auto &C : ChunkSeen)
    C.store(0);
  Pool.forRanges(0, N, Grain, [&](std::int64_t Begin, std::int64_t End) {
    // Every chunk starts on a grain boundary and spans exactly one
    // grain (the callers' deterministic-merge trick relies on this).
    EXPECT_EQ(Begin % Grain, 0);
    EXPECT_LE(End, Begin + Grain);
    EXPECT_GT(End, Begin);
    ChunkSeen[static_cast<size_t>(Begin / Grain)].fetch_add(1);
  });
  for (auto &C : ChunkSeen)
    EXPECT_EQ(C.load(), 1);
}

TEST(Parallel, EmptyAndSingletonRanges) {
  int Calls = 0;
  parallelForRanges(5, 5, [&](std::int64_t, std::int64_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  std::atomic<int> Sum{0};
  parallelFor(3, 4, [&](std::int64_t I) { Sum += static_cast<int>(I); });
  EXPECT_EQ(Sum.load(), 3);
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool Pool(4);
  const std::int64_t N = 5000;
  EXPECT_THROW(
      Pool.forRanges(0, N, 0,
                     [&](std::int64_t Begin, std::int64_t) {
                       if (Begin >= N / 2)
                         throw std::runtime_error("boom");
                     }),
      std::runtime_error);
  // The pool must stay fully usable after a body threw.
  std::atomic<std::int64_t> Count{0};
  Pool.forRanges(0, N, 0, [&](std::int64_t Begin, std::int64_t End) {
    Count += End - Begin;
  });
  EXPECT_EQ(Count.load(), N);
}

TEST(Parallel, ExceptionOnSequentialFallback) {
  ThreadPool Pool(1);
  EXPECT_THROW(Pool.forRanges(0, 10, 0,
                              [&](std::int64_t, std::int64_t) {
                                throw std::runtime_error("boom");
                              }),
               std::runtime_error);
}

TEST(Parallel, NestedParallelForRunsInline) {
  ThreadPool Pool(4);
  std::atomic<std::int64_t> Total{0};
  Pool.forRanges(0, 8, 1, [&](std::int64_t, std::int64_t) {
    // Nested loops must not deadlock; they run inline on this thread.
    parallelFor(0, 100, [&](std::int64_t) { Total.fetch_add(1); });
  });
  EXPECT_EQ(Total.load(), 800);
}

TEST(Parallel, DefaultThreadCountHonorsEnv) {
  const char *Saved = getenv("PRDNN_NUM_THREADS");
  std::string SavedValue = Saved ? Saved : "";
  ASSERT_EQ(setenv("PRDNN_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(defaultThreadCount(), 3);
  ASSERT_EQ(setenv("PRDNN_NUM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(defaultThreadCount(), 1);
  ASSERT_EQ(unsetenv("PRDNN_NUM_THREADS"), 0);
  EXPECT_GE(defaultThreadCount(), 1);
  if (Saved)
    ASSERT_EQ(setenv("PRDNN_NUM_THREADS", SavedValue.c_str(), 1), 0);
}

TEST(Parallel, ResizeRacingParallelForIsSafe) {
  // Engine jobs resize-racing the pool: threads hammer parallelFor
  // while another thread resizes the global pool. Every loop must
  // still cover every index exactly once (in-flight loops finish on
  // the pool they started with), with no deadlock or crash.
  const int LoopsPerThread = 40;
  const std::int64_t N = 4096;
  std::vector<std::int64_t> Sums(2, 0);
  std::vector<std::thread> Hammers;
  for (int T = 0; T < 2; ++T)
    Hammers.emplace_back([&, T] {
      for (int L = 0; L < LoopsPerThread; ++L) {
        std::atomic<std::int64_t> Count{0};
        parallelFor(0, N, [&](std::int64_t) {
          Count.fetch_add(1, std::memory_order_relaxed);
        });
        Sums[static_cast<size_t>(T)] += Count.load();
      }
    });
  for (int I = 0; I < 25; ++I)
    setGlobalThreadCount(1 + (I % 4));
  for (std::thread &H : Hammers)
    H.join();
  EXPECT_EQ(Sums[0], LoopsPerThread * N);
  EXPECT_EQ(Sums[1], LoopsPerThread * N);
  setGlobalThreadCount(defaultThreadCount());
}

TEST(Parallel, GlobalPoolResize) {
  setGlobalThreadCount(4);
  EXPECT_EQ(globalThreadCount(), 4);
  std::atomic<std::int64_t> Count{0};
  parallelFor(0, 1000, [&](std::int64_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 1000);
  setGlobalThreadCount(1);
  EXPECT_EQ(globalThreadCount(), 1);
  Count = 0;
  parallelFor(0, 1000, [&](std::int64_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 1000);
  setGlobalThreadCount(0); // clamped to 1
  EXPECT_EQ(globalThreadCount(), 1);
}

} // namespace
