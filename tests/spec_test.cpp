//===- tests/spec_test.cpp - specification builder tests -----------------------===//

#include "core/Specification.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace prdnn;

TEST(Spec, ClassificationConstraintSemantics) {
  // "Class 2 of 4 wins with margin 0.1".
  OutputConstraint C = classificationConstraint(4, 2, 0.1);
  ASSERT_EQ(C.numRows(), 3);
  EXPECT_TRUE(C.satisfiedBy(Vector{0.0, 0.0, 1.0, 0.5}));
  // Margin counts: a 0.05 gap is not enough.
  EXPECT_FALSE(C.satisfiedBy(Vector{0.0, 0.0, 1.0, 0.95}));
  // Another class winning violates by the gap plus the margin.
  Vector Y{2.0, 0.0, 1.0, 0.0};
  EXPECT_NEAR(C.violation(Y), 1.0 + 0.1, 1e-12);
}

TEST(Spec, ClassificationConstraintAllLabels) {
  for (int Label = 0; Label < 5; ++Label) {
    OutputConstraint C = classificationConstraint(5, Label, 0.0);
    Vector Y(5);
    Y[Label] = 1.0;
    EXPECT_TRUE(C.satisfiedBy(Y)) << "label " << Label;
    Vector Bad(5);
    Bad[(Label + 1) % 5] = 1.0;
    EXPECT_FALSE(Bad.argmax() == Label);
    EXPECT_FALSE(C.satisfiedBy(Bad, 1e-9)) << "label " << Label;
  }
}

TEST(Spec, BoxConstraintSkipsInfiniteBounds) {
  double Inf = std::numeric_limits<double>::infinity();
  OutputConstraint C = boxConstraint(Vector{-1.0, -Inf}, Vector{Inf, 2.0});
  // One finite bound per coordinate -> two rows total.
  ASSERT_EQ(C.numRows(), 2);
  EXPECT_TRUE(C.satisfiedBy(Vector{100.0, -100.0}));
  EXPECT_FALSE(C.satisfiedBy(Vector{-2.0, 0.0}));
  EXPECT_FALSE(C.satisfiedBy(Vector{0.0, 3.0}));
}

TEST(Spec, BoxConstraintViolationMagnitude) {
  OutputConstraint C = boxConstraint(Vector{0.0}, Vector{1.0});
  EXPECT_DOUBLE_EQ(C.violation(Vector{1.75}), 0.75);
  EXPECT_DOUBLE_EQ(C.violation(Vector{-0.25}), 0.25);
  EXPECT_DOUBLE_EQ(C.violation(Vector{0.5}), 0.0);
}

TEST(Spec, SatisfiesChecksPinnedPatterns) {
  // N(x) = ReLU(x); at x = 0 the pinned "active" pattern extends the
  // identity piece, so constraints are judged against that extension.
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{1.0}}), Vector{0.0}));
  Net.addLayer(std::make_unique<ReLULayer>(1));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{1.0}}), Vector{0.0}));

  NetworkPattern Active = computePattern(Net, Vector{1.0});
  NetworkPattern Inactive = computePattern(Net, Vector{-1.0});

  PointSpec SpecActive;
  SpecActive.push_back({Vector{-2.0},
                        boxConstraint(Vector{-2.0}, Vector{-2.0}), Active});
  EXPECT_TRUE(satisfies(Net, SpecActive, 1e-9));

  PointSpec SpecInactive;
  SpecInactive.push_back({Vector{-2.0},
                          boxConstraint(Vector{0.0}, Vector{0.0}),
                          Inactive});
  EXPECT_TRUE(satisfies(Net, SpecInactive, 1e-9));

  // maxViolation reports the worst point across the spec.
  PointSpec Mixed = SpecActive;
  Mixed.push_back({Vector{3.0}, boxConstraint(Vector{0.0}, Vector{1.0}),
                   std::nullopt});
  EXPECT_NEAR(maxViolation(Net, Mixed), 2.0, 1e-9);
}

TEST(Spec, EmptySpecIsSatisfied) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{1.0}}), Vector{0.0}));
  EXPECT_TRUE(satisfies(Net, PointSpec{}));
  EXPECT_DOUBLE_EQ(maxViolation(Net, PointSpec{}), 0.0);
}

class SpecRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpecRandomTest, ViolationIsMaxOverRows) {
  Rng R(GetParam());
  int Dim = R.uniformInt(2, 6);
  int Rows = R.uniformInt(1, 8);
  OutputConstraint C;
  C.A = Matrix(Rows, Dim);
  C.B = Vector(Rows);
  for (int I = 0; I < Rows; ++I) {
    for (int J = 0; J < Dim; ++J)
      C.A(I, J) = R.normal();
    C.B[I] = R.normal();
  }
  Vector Y(Dim);
  for (int J = 0; J < Dim; ++J)
    Y[J] = R.normal();
  double Expected = 0.0;
  for (int I = 0; I < Rows; ++I) {
    double Activity = 0.0;
    for (int J = 0; J < Dim; ++J)
      Activity += C.A(I, J) * Y[J];
    Expected = std::max(Expected, Activity - C.B[I]);
  }
  EXPECT_NEAR(C.violation(Y), Expected, 1e-12);
  EXPECT_EQ(C.satisfiedBy(Y, 1e-9), Expected <= 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpecRandomTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

} // namespace
