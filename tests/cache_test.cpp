//===- tests/cache_test.cpp - repair-artifact cache tests --------------------===//
//
// Covers the cache subsystem's contracts: fingerprint stability across
// rebuilds and sensitivity to parameter/topology edits; LRU eviction
// under the byte budget (recency honored, oversized artifacts never
// retained); single-flight insertion under concurrent callers and
// under 8 concurrent engine jobs on the same key; and the determinism
// contract - cache-on cold, cache-on warm, and cache-off runs produce
// bit-for-bit identical Delta/RepairResult at any thread count, for
// point and polytope requests alike. Runs under the CI ThreadSanitizer
// job next to parallel_test and engine_test.
//
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"

#include "api/RepairEngine.h"
#include "cache/Fingerprint.h"
#include "core/PolytopeRepair.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 6 -> 16 -> 16 -> 4 ReLU classifier; parameterized layers 0, 2, 4.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 6, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 16, 0.9), randomVector(R, 16, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 4, 16, 0.9), randomVector(R, 4, 0.3)));
  return Net;
}

/// Every third point flips to its runner-up class; the rest anchor.
PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

Network makeFigure3Network() {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0}, {1.0}, {1.0}}), Vector{0.0, 0.0, -1.0}));
  Net.addLayer(std::make_unique<ReLULayer>(3));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0, -1.0, 1.0}}), Vector{0.0}));
  return Net;
}

void expectBitIdentical(const RepairResult &A, const RepairResult &B) {
  ASSERT_EQ(A.Status, B.Status);
  ASSERT_EQ(A.Delta.size(), B.Delta.size());
  for (size_t I = 0; I < A.Delta.size(); ++I)
    EXPECT_EQ(A.Delta[I], B.Delta[I]) << "Delta[" << I << "]";
  EXPECT_EQ(A.DeltaL1, B.DeltaL1);
  EXPECT_EQ(A.DeltaLInf, B.DeltaLInf);
  EXPECT_EQ(A.Stats.SpecRows, B.Stats.SpecRows);
  EXPECT_EQ(A.Stats.LpRowsUsed, B.Stats.LpRowsUsed);
}

/// Test artifact with a fixed reported size.
struct SizedArtifact final : CacheArtifact {
  explicit SizedArtifact(std::size_t Size) : Size(Size) {}
  std::size_t bytes() const override { return Size; }
  std::size_t Size;
};

CacheKey keyOf(std::uint64_t Tag) {
  Hasher H;
  H.u64(Tag);
  return CacheKey{ArtifactKind::JacobianRows, H.digest()};
}

// --- Fingerprints -----------------------------------------------------------

TEST(Fingerprint, StableAcrossRebuilds) {
  Rng R1(4401), R2(4401);
  Network A = makeClassifier(R1);
  Network B = makeClassifier(R2);
  EXPECT_EQ(fingerprintNetwork(A), fingerprintNetwork(B));
  // And across deep copies.
  Network C = A;
  EXPECT_EQ(fingerprintNetwork(A), fingerprintNetwork(C));
}

TEST(Fingerprint, SensitiveToParameterEdit) {
  Rng R(4402);
  Network Net = makeClassifier(R);
  NetworkFingerprint Before = fingerprintNetwork(Net);

  // The smallest representable nudge of one parameter must change the
  // address: keys cover parameter *bits*.
  auto &Layer2 = cast<LinearLayer>(Net.layer(2));
  std::vector<double> Delta(static_cast<size_t>(Layer2.numParams()), 0.0);
  Delta[7] = 1e-15;
  Layer2.addToParams(Delta);
  EXPECT_NE(fingerprintNetwork(Net), Before);
}

TEST(Fingerprint, SensitiveToTopology) {
  Rng R(4403);
  Network Net = makeClassifier(R);
  NetworkFingerprint Before = fingerprintNetwork(Net);
  Net.addLayer(std::make_unique<ReLULayer>(4));
  EXPECT_NE(fingerprintNetwork(Net), Before);
}

// --- ArtifactCache unit behavior --------------------------------------------

TEST(ArtifactCache, HitMissAndStats) {
  ArtifactCache Cache(1 << 20, /*NumShards=*/4);
  bool Hit = true;
  auto A = Cache.getOrCompute(
      keyOf(1), [] { return std::make_shared<SizedArtifact>(100); }, &Hit);
  EXPECT_FALSE(Hit);
  auto B = Cache.getOrCompute(
      keyOf(1), [] { return std::make_shared<SizedArtifact>(100); }, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(A.get(), B.get());

  CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Insertions, 1u);
  EXPECT_EQ(Stats.Entries, 1u);
  EXPECT_EQ(Stats.BytesHeld, 100u);
  EXPECT_EQ(Stats.BudgetBytes, static_cast<std::uint64_t>(1 << 20));
  EXPECT_DOUBLE_EQ(Stats.hitRate(), 0.5);

  Cache.clear();
  Stats = Cache.stats();
  EXPECT_EQ(Stats.Entries, 0u);
  EXPECT_EQ(Stats.BytesHeld, 0u);
}

TEST(ArtifactCache, LruEvictionUnderByteBudget) {
  // Single shard so the whole budget is one LRU.
  ArtifactCache Cache(1000, /*NumShards=*/1);
  auto Insert = [&](std::uint64_t Tag) {
    Cache.getOrCompute(keyOf(Tag),
                       [] { return std::make_shared<SizedArtifact>(400); });
  };
  auto IsHit = [&](std::uint64_t Tag) {
    bool Hit = false;
    Cache.getOrCompute(keyOf(Tag),
                       [] { return std::make_shared<SizedArtifact>(400); },
                       &Hit);
    return Hit;
  };

  Insert(1);
  Insert(2);
  EXPECT_EQ(Cache.stats().BytesHeld, 800u);
  EXPECT_EQ(Cache.stats().Evictions, 0u);

  // Third insert overflows: the least-recently-used key (1) goes.
  Insert(3);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_LE(Cache.stats().BytesHeld, 1000u);
  EXPECT_TRUE(IsHit(2));
  EXPECT_TRUE(IsHit(3));
  EXPECT_FALSE(IsHit(1)); // recomputed; this also re-inserts 1

  // The IsHit(2)/IsHit(3) touches refreshed recency before 1 was
  // re-inserted, so the re-insert of 1 evicted 2 (the then-LRU).
  EXPECT_FALSE(IsHit(2));
}

TEST(ArtifactCache, OversizedArtifactReturnedButNotRetained) {
  ArtifactCache Cache(100, /*NumShards=*/1);
  bool Hit = true;
  auto Value = Cache.getOrCompute(
      keyOf(9), [] { return std::make_shared<SizedArtifact>(4096); }, &Hit);
  EXPECT_FALSE(Hit);
  ASSERT_NE(Value, nullptr);
  EXPECT_EQ(Value->bytes(), 4096u);
  EXPECT_EQ(Cache.stats().BytesHeld, 0u);
  EXPECT_EQ(Cache.stats().Entries, 0u);
  // Asking again recomputes - never a stale or partial retain.
  Cache.getOrCompute(
      keyOf(9), [] { return std::make_shared<SizedArtifact>(4096); }, &Hit);
  EXPECT_FALSE(Hit);

  // A known-oversized key must not serialize concurrent callers
  // through the single-flight claim: four 100ms computes overlapping
  // must each run (no sharing) and finish well under the >= 400ms a
  // one-at-a-time claim/erase cycle would take. (The 300ms bound
  // leaves 200ms of scheduler/TSan headroom - the threads only
  // sleep, so they overlap even on one core.)
  std::atomic<int> Computes{0};
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      bool ThreadHit = true;
      Cache.getOrCompute(
          keyOf(9),
          [&] {
            ++Computes;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            return std::make_shared<SizedArtifact>(4096);
          },
          &ThreadHit);
      EXPECT_FALSE(ThreadHit);
    });
  for (std::thread &T : Threads)
    T.join();
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_EQ(Computes.load(), 4);
  EXPECT_LT(Elapsed, 0.3) << "oversized computes serialized";
}

TEST(ArtifactCache, ZeroBudgetAlwaysComputes) {
  ArtifactCache Cache(0);
  for (int I = 0; I < 3; ++I) {
    bool Hit = true;
    Cache.getOrCompute(
        keyOf(5), [] { return std::make_shared<SizedArtifact>(1); }, &Hit);
    EXPECT_FALSE(Hit);
  }
  EXPECT_EQ(Cache.stats().BytesHeld, 0u);
}

TEST(ArtifactCache, SingleFlightComputesOnceUnderConcurrency) {
  ArtifactCache Cache(1 << 20);
  std::atomic<int> Computes{0};
  std::atomic<int> Hits{0};
  std::vector<std::shared_ptr<const CacheArtifact>> Results(8);

  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&, T] {
      bool Hit = false;
      Results[static_cast<size_t>(T)] = Cache.getOrCompute(
          keyOf(77),
          [&] {
            ++Computes;
            // Widen the race window so every thread arrives while the
            // first is still computing.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return std::make_shared<SizedArtifact>(64);
          },
          &Hit);
      Hits += Hit;
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Computes.load(), 1);
  EXPECT_EQ(Hits.load(), 7);
  for (const auto &Result : Results)
    EXPECT_EQ(Result.get(), Results[0].get());
}

// --- Engine integration: determinism and sharing ----------------------------

TEST(EngineCache, SingleFlightAcrossEightConcurrentJobs) {
  Rng R(4404);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 24);
  RepairResult Serial = repairPoints(*Net, 4, Spec);

  EngineOptions Options;
  Options.NumWorkers = 8;
  RepairEngine Engine(Options);
  ASSERT_TRUE(Engine.hasCache());

  // Eight identical jobs racing on the same Jacobian-chunk key: the
  // block is computed exactly once (single-flight), every job matches
  // the (cache-free) serial wrapper bit-for-bit.
  std::vector<JobHandle> Handles;
  for (int J = 0; J < 8; ++J)
    Handles.push_back(Engine.submit(RepairRequest::points(Net, 4, Spec)));
  for (JobHandle &Handle : Handles)
    expectBitIdentical(Handle.report().Result, Serial);

  // Identical jobs perform identical lookup sequences: one Jacobian
  // chunk plus one simplex-basis lookup per LP solve (all jobs solve
  // the same LPs, so LpSolves is the same for every report). Each
  // distinct key is computed exactly once (single-flight) and hits for
  // the other seven jobs.
  const RepairStats &FirstStats = Handles[0].report().Result.Stats;
  int LpSolves = FirstStats.BasisHits + FirstStats.BasisMisses;
  EXPECT_GT(LpSolves, 0);
  int KeysPerJob = 1 + LpSolves;
  CacheStats Stats = Engine.cacheStats();
  EXPECT_EQ(Stats.Misses, static_cast<std::uint64_t>(KeysPerJob));
  EXPECT_EQ(Stats.Hits, static_cast<std::uint64_t>(7 * KeysPerJob));
  EXPECT_GT(Stats.BytesHeld, 0u);

  std::int64_t TotalHits = 0;
  for (JobHandle &Handle : Handles) {
    const RepairReport &Report = Handle.report();
    EXPECT_EQ(Report.CacheHits + Report.CacheMisses, KeysPerJob);
    TotalHits += Report.CacheHits;
    // The per-phase breakdown lands in the attempt stats.
    EXPECT_EQ(Report.Result.Stats.JacobianCacheHits +
                  Report.Result.Stats.JacobianCacheMisses,
              1);
    EXPECT_EQ(Report.Result.Stats.BasisHits + Report.Result.Stats.BasisMisses,
              LpSolves);
  }
  EXPECT_EQ(TotalHits, 7 * KeysPerJob);
}

TEST(EngineCache, ColdWarmOffBitIdentityPointsAnyThreadCount) {
  Rng R(4405);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 30);
  RepairRequest Request = RepairRequest::points(Net, 2, Spec);

  EngineOptions Off;
  Off.EnableCache = false;
  RepairEngine NoCacheEngine(Off);
  RepairReport OffReport = NoCacheEngine.run(Request);
  ASSERT_FALSE(NoCacheEngine.hasCache());
  EXPECT_EQ(OffReport.CacheHits + OffReport.CacheMisses, 0);

  RepairEngine Engine; // cache on by default
  RepairReport Cold = Engine.run(Request);
  RepairReport Warm = Engine.run(Request);
  EXPECT_GT(Cold.CacheMisses, 0);
  EXPECT_EQ(Cold.CacheHits, 0);
  EXPECT_GT(Warm.CacheHits, 0);
  EXPECT_EQ(Warm.CacheMisses, 0);
  EXPECT_GT(Warm.Result.Stats.JacobianCacheHits, 0);

  expectBitIdentical(Cold.Result, OffReport.Result);
  expectBitIdentical(Warm.Result, OffReport.Result);

  // Warm hits must survive a thread-count change bit-for-bit (the
  // artifacts were computed under the original pool).
  setGlobalThreadCount(3);
  RepairReport Warm3 = Engine.run(Request);
  setGlobalThreadCount(1);
  RepairReport Warm1 = Engine.run(Request);
  setGlobalThreadCount(defaultThreadCount());
  EXPECT_GT(Warm3.CacheHits, 0);
  EXPECT_GT(Warm1.CacheHits, 0);
  expectBitIdentical(Warm3.Result, OffReport.Result);
  expectBitIdentical(Warm1.Result, OffReport.Result);

  // Per-request opt-out recomputes but stays bit-identical.
  RepairRequest OptOut = Request;
  OptOut.Options.UseCache = false;
  RepairReport OptOutReport = Engine.run(OptOut);
  EXPECT_EQ(OptOutReport.CacheHits + OptOutReport.CacheMisses, 0);
  expectBitIdentical(OptOutReport.Result, OffReport.Result);
}

TEST(EngineCache, WarmResubmissionReplaysSimplexBases) {
  Rng R(4409);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 20);
  RepairRequest Request = RepairRequest::points(Net, 4, Spec);

  RepairEngine Engine;
  RepairReport Cold = Engine.run(Request);
  ASSERT_EQ(Cold.Status, RepairStatus::Success);
  EXPECT_EQ(Cold.Result.Stats.BasisHits, 0);
  EXPECT_GT(Cold.Result.Stats.BasisMisses, 0); // every LP solved cold
  EXPECT_GT(Cold.Result.Stats.LpIterations, 0);
  ASSERT_EQ(Cold.Sweep.size(), 1u);
  EXPECT_FALSE(Cold.Sweep[0].WarmStarted);

  // Resubmission: every LP of the replayed repair finds its terminal
  // basis in the cache (the digests match exactly), re-derives each
  // optimum from the factorization without a single pivot, and the
  // result stays bit-identical.
  RepairReport Warm = Engine.run(Request);
  expectBitIdentical(Warm.Result, Cold.Result);
  EXPECT_EQ(Warm.Result.Stats.BasisMisses, 0);
  EXPECT_EQ(Warm.Result.Stats.BasisHits, Cold.Result.Stats.BasisMisses);
  EXPECT_EQ(Warm.Result.Stats.LpIterations, 0);
  ASSERT_EQ(Warm.Sweep.size(), 1u);
  EXPECT_TRUE(Warm.Sweep[0].WarmStarted);

  // Per-request opt-out: Jacobian chunks still hit, but every LP
  // solves cold - bit-identically, as always.
  RepairRequest NoWarm = Request;
  NoWarm.Options.WarmStartBasis = false;
  RepairReport Off = Engine.run(NoWarm);
  EXPECT_EQ(Off.Result.Stats.BasisHits + Off.Result.Stats.BasisMisses, 0);
  EXPECT_GT(Off.Result.Stats.LpIterations, 0);
  EXPECT_FALSE(Off.Sweep[0].WarmStarted);
  expectBitIdentical(Off.Result, Cold.Result);
}

TEST(EngineCache, ColdWarmBitIdentityPolytopes) {
  Network Net = makeFigure3Network();
  PolytopeSpec Spec;
  Spec.push_back(SpecPolytope{SegmentPolytope{Vector{0.5}, Vector{1.5}},
                              boxConstraint(Vector{-0.8}, Vector{-0.4})});
  RepairOptions Options;
  Options.RowMargin = 0.0;
  RepairRequest Request = RepairRequest::polytopes(
      RepairRequest::borrow(Net), 0, Spec, Options);

  RepairResult Serial = repairPolytopes(Net, 0, Spec, Options);

  RepairEngine Engine;
  RepairReport Cold = Engine.run(Request);
  RepairReport Warm = Engine.run(Request);

  expectBitIdentical(Cold.Result, Serial);
  expectBitIdentical(Warm.Result, Serial);
  EXPECT_EQ(Cold.Result.Stats.LinRegionsCacheMisses, 1);
  EXPECT_EQ(Warm.Result.Stats.LinRegionsCacheHits, 1);
  EXPECT_EQ(Warm.Result.Stats.PatternCacheHits, 1);
  EXPECT_GT(Warm.Result.Stats.JacobianCacheHits, 0);
  EXPECT_EQ(Warm.Result.Stats.KeyPoints, Serial.Stats.KeyPoints);
  EXPECT_EQ(Warm.Result.Stats.LinearRegions, Serial.Stats.LinearRegions);

  // A spec with the same shapes but different output constraints
  // shares the transform artifact (shape-keyed) while its Jacobian
  // rows recompute (constraint-keyed).
  PolytopeSpec Tighter;
  Tighter.push_back(SpecPolytope{SegmentPolytope{Vector{0.5}, Vector{1.5}},
                                 boxConstraint(Vector{-0.8}, Vector{-0.5})});
  RepairReport Shared = Engine.run(RepairRequest::polytopes(
      RepairRequest::borrow(Net), 0, Tighter, Options));
  EXPECT_EQ(Shared.Result.Stats.LinRegionsCacheHits, 1);
  EXPECT_EQ(Shared.Result.Stats.PatternCacheHits, 1);
  EXPECT_EQ(Shared.Result.Stats.JacobianCacheMisses, 1);
  expectBitIdentical(Shared.Result, repairPolytopes(Net, 0, Tighter, Options));
}

TEST(EngineCache, ParameterEditInvalidatesAddresses) {
  Rng R(4406);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 18);

  RepairEngine Engine;
  RepairReport First = Engine.run(RepairRequest::points(Net, 4, Spec));
  EXPECT_GT(First.CacheMisses, 0);

  // Same spec against an edited copy of the network: every lookup must
  // miss (different fingerprint), and the result must match that
  // network's own cache-free run.
  auto Edited = std::make_shared<Network>(*Net);
  auto &Layer4 = cast<LinearLayer>(Edited->layer(4));
  std::vector<double> Delta(static_cast<size_t>(Layer4.numParams()), 0.0);
  Delta[0] = 1e-12;
  Layer4.addToParams(Delta);

  RepairReport EditedReport =
      Engine.run(RepairRequest::points(Edited, 4, Spec));
  EXPECT_EQ(EditedReport.CacheHits, 0);
  expectBitIdentical(EditedReport.Result, repairPoints(*Edited, 4, Spec));
}

TEST(EngineCache, ClearCacheResetsCountersForCleanMeasurementPhases) {
  Rng R(4408);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 24);
  RepairRequest Request = RepairRequest::points(Net, 0, Spec);

  RepairEngine Engine;
  Engine.run(Request);
  Engine.run(Request);
  CacheStats Before = Engine.cacheStats();
  EXPECT_GT(Before.Hits, 0u);
  EXPECT_GT(Before.Misses, 0u);
  EXPECT_GT(Before.Entries, 0u);

  // clearCache drops entries *and* zeroes the counters, so a bench
  // phase after it measures only itself (documented in
  // cache/README.md).
  Engine.clearCache();
  CacheStats Cleared = Engine.cacheStats();
  EXPECT_EQ(Cleared.Hits, 0u);
  EXPECT_EQ(Cleared.Misses, 0u);
  EXPECT_EQ(Cleared.Evictions, 0u);
  EXPECT_EQ(Cleared.Insertions, 0u);
  EXPECT_EQ(Cleared.Entries, 0u);
  EXPECT_EQ(Cleared.BytesHeld, 0u);

  // The next run is cold again - and its counters start from zero.
  Engine.run(Request);
  CacheStats After = Engine.cacheStats();
  EXPECT_EQ(After.Hits, 0u);
  EXPECT_GT(After.Misses, 0u);

  // resetCacheStats zeroes counters but keeps the warm entries.
  Engine.run(Request);
  Engine.resetCacheStats();
  CacheStats Reset = Engine.cacheStats();
  EXPECT_EQ(Reset.Hits, 0u);
  EXPECT_EQ(Reset.Misses, 0u);
  EXPECT_GT(Reset.Entries, 0u);
  RepairReport StillWarm = Engine.run(Request);
  EXPECT_GT(StillWarm.CacheHits, 0);
  EXPECT_EQ(Engine.cacheStats().Misses, 0u);
}

TEST(EngineCache, ProgressSnapshotSurfacesCacheCounters) {
  Rng R(4407);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  PointSpec Spec = makeFlipSpec(*Net, R, 24);

  RepairEngine Engine;
  Engine.run(RepairRequest::points(Net, 0, Spec)); // prime the cache
  JobHandle Handle = Engine.submit(RepairRequest::points(Net, 0, Spec));
  Handle.wait();
  ProgressSnapshot Snapshot = Handle.progress();
  EXPECT_EQ(Snapshot.Phase, RepairPhase::Done);
  EXPECT_GT(Snapshot.CacheHits, 0);
  EXPECT_EQ(Snapshot.CacheMisses, 0);
}

} // namespace
