//===- tests/train_test.cpp - SGD / FT / MFT tests -----------------------------===//

#include "train/FineTune.h"
#include "train/Loss.h"
#include "train/Sgd.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace prdnn;

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

Network makeSmallClassifier(Rng &R, int InputSize, int Hidden, int Classes) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Hidden, InputSize, 0.7),
      randomVector(R, Hidden, 0.1)));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Classes, Hidden, 0.7),
      randomVector(R, Classes, 0.1)));
  return Net;
}

/// Two well-separated Gaussian blobs per class.
Dataset makeBlobs(Rng &R, int PerClass, int Classes, int Dim) {
  Dataset Data;
  std::vector<Vector> Centers;
  for (int C = 0; C < Classes; ++C) {
    Vector Center(Dim);
    for (int D = 0; D < Dim; ++D)
      Center[D] = 4.0 * ((C >> (D % 3)) & 1 ? 1.0 : -1.0) +
                  0.5 * C; // spread the classes apart
    Centers.push_back(std::move(Center));
  }
  for (int I = 0; I < PerClass * Classes; ++I) {
    int C = I % Classes;
    Vector X = Centers[static_cast<size_t>(C)];
    for (int D = 0; D < Dim; ++D)
      X[D] += R.normal(0.0, 0.4);
    Data.push(std::move(X), C);
  }
  return Data;
}

// --- Loss ---------------------------------------------------------------------

TEST(Loss, CrossEntropyKnownValues) {
  // Uniform logits over K classes: loss = log K.
  Vector Logits{0.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(crossEntropyLoss(Logits, 2), std::log(4.0), 1e-12);
  // Strongly-correct prediction: near-zero loss.
  Vector Confident{10.0, -10.0};
  EXPECT_LT(crossEntropyLoss(Confident, 0), 1e-4);
  EXPECT_GT(crossEntropyLoss(Confident, 1), 10.0);
}

TEST(Loss, StableUnderLargeLogits) {
  Vector Huge{1000.0, 999.0};
  double L = crossEntropyLoss(Huge, 0);
  EXPECT_TRUE(std::isfinite(L));
  EXPECT_NEAR(L, std::log(1.0 + std::exp(-1.0)), 1e-9);
}

TEST(Loss, GradientMatchesFiniteDifferences) {
  Rng R(1);
  Vector Logits = randomVector(R, 5, 2.0);
  Vector Grad;
  crossEntropyLossGrad(Logits, 3, Grad);
  const double Eps = 1e-6;
  for (int I = 0; I < 5; ++I) {
    Vector Plus = Logits, Minus = Logits;
    Plus[I] += Eps;
    Minus[I] -= Eps;
    double Fd =
        (crossEntropyLoss(Plus, 3) - crossEntropyLoss(Minus, 3)) / (2 * Eps);
    EXPECT_NEAR(Grad[I], Fd, 1e-6);
  }
  // Softmax gradient rows sum to zero.
  double Sum = 0.0;
  for (int I = 0; I < 5; ++I)
    Sum += Grad[I];
  EXPECT_NEAR(Sum, 0.0, 1e-12);
}

// --- Backprop -------------------------------------------------------------------

TEST(Backprop, FullNetworkGradientCheck) {
  Rng R(2);
  Network Net = makeSmallClassifier(R, 4, 6, 3);
  Vector X = randomVector(R, 4);
  int Label = 1;

  std::vector<std::vector<double>> Grads(
      static_cast<size_t>(Net.numLayers()));
  for (int LayerIdx : Net.parameterizedLayerIndices())
    Grads[static_cast<size_t>(LayerIdx)].assign(
        static_cast<size_t>(
            cast<LinearLayer>(Net.layer(LayerIdx)).numParams()),
        0.0);
  backprop(Net, X, Label, Grads);

  const double Eps = 1e-6;
  for (int LayerIdx : Net.parameterizedLayerIndices()) {
    auto &L = cast<LinearLayer>(Net.layer(LayerIdx));
    std::vector<double> Params;
    L.getParams(Params);
    for (int P = 0; P < L.numParams(); ++P) {
      std::vector<double> Mod = Params;
      Mod[P] += Eps;
      L.setParams(Mod);
      double Plus = crossEntropyLoss(Net.evaluate(X), Label);
      Mod[P] -= 2 * Eps;
      L.setParams(Mod);
      double Minus = crossEntropyLoss(Net.evaluate(X), Label);
      L.setParams(Params);
      double Fd = (Plus - Minus) / (2 * Eps);
      EXPECT_NEAR(Grads[static_cast<size_t>(LayerIdx)][P], Fd, 1e-5)
          << "layer " << LayerIdx << " param " << P;
    }
  }
}

// --- SGD -----------------------------------------------------------------------

TEST(Sgd, LearnsSeparableBlobs) {
  Rng R(3);
  Network Net = makeSmallClassifier(R, 3, 12, 4);
  Dataset Data = makeBlobs(R, 40, 4, 3);
  SgdOptions Options;
  Options.LearningRate = 0.05;
  Options.Momentum = 0.9;
  Options.BatchSize = 16;
  Options.Epochs = 40;
  TrainTrace Trace = trainSgd(Net, Data, Options, R);
  ASSERT_EQ(Trace.EpochLoss.size(), 40u);
  EXPECT_LT(Trace.EpochLoss.back(), Trace.EpochLoss.front());
  EXPECT_GE(accuracy(Net, Data.Inputs, Data.Labels), 0.97);
}

TEST(Sgd, DeterministicGivenSeed) {
  Rng R1(4), R2(4);
  Rng Init(5);
  Network A = makeSmallClassifier(Init, 3, 8, 3);
  Network B = A;
  Dataset Data = makeBlobs(Init, 20, 3, 3);
  SgdOptions Options;
  Options.Epochs = 5;
  trainSgd(A, Data, Options, R1);
  trainSgd(B, Data, Options, R2);
  Vector X = Vector{0.5, -0.5, 1.0};
  EXPECT_LT(A.evaluate(X).maxAbsDiff(B.evaluate(X)), 1e-15);
}

TEST(Sgd, OnlyLayerLeavesOthersUntouched) {
  Rng R(6);
  Network Net = makeSmallClassifier(R, 3, 8, 3);
  std::vector<double> Layer0Before;
  cast<LinearLayer>(Net.layer(0)).getParams(Layer0Before);

  Dataset Data = makeBlobs(R, 10, 3, 3);
  SgdOptions Options;
  Options.Epochs = 3;
  Options.OnlyLayer = 2;
  trainSgd(Net, Data, Options, R);

  std::vector<double> Layer0After;
  cast<LinearLayer>(Net.layer(0)).getParams(Layer0After);
  EXPECT_EQ(Layer0Before, Layer0After);
}

TEST(Sgd, DriftPenaltyShrinksTheChange) {
  Rng Init(7);
  Network Base = makeSmallClassifier(Init, 3, 8, 3);
  Dataset Data = makeBlobs(Init, 15, 3, 3);

  auto DriftOf = [&](double Penalty) {
    Network Net = Base;
    Rng R(8);
    SgdOptions Options;
    Options.Epochs = 10;
    Options.OnlyLayer = 2;
    Options.DriftPenaltyL1 = Penalty;
    Options.DriftPenaltyLInf = Penalty;
    trainSgd(Net, Data, Options, R);
    std::vector<double> Before, After;
    cast<LinearLayer>(Base.layer(2)).getParams(Before);
    cast<LinearLayer>(Net.layer(2)).getParams(After);
    double Drift = 0.0;
    for (size_t P = 0; P < Before.size(); ++P)
      Drift += std::fabs(After[P] - Before[P]);
    return Drift;
  };
  EXPECT_LT(DriftOf(0.5), DriftOf(0.0));
}

// --- FT / MFT -------------------------------------------------------------------

TEST(FineTune, ReachesFullAccuracyOnSmallRepairSet) {
  Rng R(9);
  Network Net = makeSmallClassifier(R, 3, 10, 3);
  Dataset Data = makeBlobs(R, 4, 3, 3);
  FineTuneOptions Options;
  Options.LearningRate = 0.05;
  Options.MaxEpochs = 500;
  FineTuneResult Result = fineTune(Net, Data, Options, R);
  EXPECT_TRUE(Result.ReachedFullAccuracy);
  EXPECT_DOUBLE_EQ(Result.RepairAccuracy, 1.0);
  EXPECT_GT(Result.Epochs, 0);
}

TEST(FineTune, RespectsEpochCap) {
  Rng R(10);
  Network Net = makeSmallClassifier(R, 3, 4, 3);
  // Contradictory labels on the same input: cannot reach 100%.
  Dataset Data;
  Vector X{1.0, 1.0, 1.0};
  Data.push(X, 0);
  Data.push(X, 1);
  FineTuneOptions Options;
  Options.MaxEpochs = 20;
  FineTuneResult Result = fineTune(Net, Data, Options, R);
  EXPECT_FALSE(Result.ReachedFullAccuracy);
  EXPECT_LE(Result.Epochs, 20);
}

TEST(ModifiedFineTune, TrainsOnlyItsLayerAndEarlyStops) {
  Rng R(11);
  Network Net = makeSmallClassifier(R, 3, 10, 3);
  Dataset Data = makeBlobs(R, 12, 3, 3);

  std::vector<double> Layer0Before;
  cast<LinearLayer>(Net.layer(0)).getParams(Layer0Before);

  ModifiedFineTuneOptions Options;
  Options.LayerIndex = 2;
  Options.MaxEpochs = 50;
  ModifiedFineTuneResult Result = modifiedFineTune(Net, Data, Options, R);

  std::vector<double> Layer0After;
  cast<LinearLayer>(Result.Tuned.layer(0)).getParams(Layer0After);
  EXPECT_EQ(Layer0Before, Layer0After);
  EXPECT_GE(Result.HoldoutAccuracy, 0.0);
  EXPECT_LE(Result.Epochs, 50);
}

} // namespace
